"""Rule localization tests (Algorithm 2 / Claim 1)."""

import pytest

from repro.engine import Database, psn, seminaive
from repro.errors import PlanError
from repro.ndlog import parse, parse_rule
from repro.ndlog.programs import (
    magic_src_dst,
    multi_query_magic,
    reachability,
    shortest_path_safe,
)
from repro.ndlog.validator import validate
from repro.planner.localization import (
    head_is_local,
    is_canonical,
    localize,
    localize_rule,
    rule_execution_site,
)

FIGURE2_LINKS = [
    ("a", "b", 5), ("b", "a", 5),
    ("a", "c", 1), ("c", "a", 1),
    ("c", "b", 1), ("b", "c", 1),
    ("b", "d", 1), ("d", "b", 1),
    ("e", "a", 1), ("a", "e", 1),
]


def test_local_rule_untouched():
    rule = parse_rule("p(@S, X) :- q(@S, X).")
    assert localize_rule(rule, 0, {"p", "q"}) == [rule]


def test_single_hop_send_rule_untouched():
    # Body fully at @S, head at @D: already canonical (one link hop).
    rule = parse_rule("p(@D, X) :- #link(@S, @D, C), q(@S, X).")
    assert localize_rule(rule, 0, {"p", "q", "link"}) == [rule]


def test_sp2_splits_into_send_and_final():
    """The paper's SP2 -> SP2a + SP2b rewrite (Section 3.2)."""
    rule = parse_rule(
        "SP2: path(@S, @D, @Z, P, C) :- #link(@S, @Z, C1), "
        "path(@Z, @D, @Z2, P2, C2), C := C1 + C2, "
        "P := f_concatPath(link(@S, @Z, C1), P2)."
    )
    out = localize_rule(rule, 0, {"path", "link"})
    assert len(out) == 2
    send, final = out
    # Send rule: ships the link (with its cost) from @S to @Z -- the
    # paper's SP2a "linkD" rule.
    assert send.head.args[0].name == "Z"
    assert send.body_literals[0].pred == "link"
    assert rule_execution_site(send) == ("var", "S")
    assert not head_is_local(send)
    # Final rule executes at @Z and sends path tuples back to @S over
    # the reverse link (paper's SP2b).
    assert rule_execution_site(final) == ("var", "Z")
    assert final.head.pred == "path"
    assert final.head.args[0].name == "S"
    link_literals = [l for l in final.body_literals if l.link_literal]
    assert len(link_literals) == 1
    assert link_literals[0].args[0].name == "Z"  # reverse link at @Z


def test_localized_program_is_canonical():
    for builder in (shortest_path_safe, reachability, magic_src_dst,
                    multi_query_magic):
        localized = localize(builder())
        assert is_canonical(localized), builder.__name__
        report = validate(localized, strict_address_types=False)
        assert report.ok, (builder.__name__, report.errors)


def test_original_sp_program_not_canonical():
    assert not is_canonical(shortest_path_safe())


def test_localization_preserves_semantics():
    """Claim 1: the rewritten program is equivalent."""
    for builder in (shortest_path_safe, reachability):
        program = builder()
        localized = localize(program)
        db1 = Database.for_program(program)
        db1.load_facts("link", FIGURE2_LINKS)
        db2 = Database.for_program(localized)
        db2.load_facts("link", FIGURE2_LINKS)
        r1 = psn.evaluate(program, db1)
        r2 = psn.evaluate(localized, db2)
        query = program.query.pred
        assert r1.rows(query) == r2.rows(query), builder.__name__


def test_localization_preserves_semantics_seminaive():
    program = shortest_path_safe()
    localized = localize(program)
    db1 = Database.for_program(program)
    db1.load_facts("link", FIGURE2_LINKS)
    db2 = Database.for_program(localized)
    db2.load_facts("link", FIGURE2_LINKS)
    r1 = seminaive.evaluate(program, db1)
    r2 = seminaive.evaluate(localized, db2)
    assert r1.rows("shortestPath") == r2.rows("shortestPath")


def test_top_down_rule_localizes():
    """SP2-SD: recursive literal at the link source, head at the dest."""
    rule = parse_rule(
        "SP2SD: pathDst(@D, @S, @Z, P, C) :- pathDst(@Z, @S, @Z1, P1, C1), "
        "#link(@Z, @D, C2), C := C1 + C2, "
        "P := f_concatPath(P1, link(@Z, @D, C2))."
    )
    out = localize_rule(rule, 0, {"pathDst", "link"})
    # Body is all at @Z (link source) and the head is at @D: this is a
    # single-hop send -- no split needed.
    assert out == [rule]


def test_non_link_restricted_rejected():
    rule = parse_rule("p(@D, X) :- q(@S, X).")
    with pytest.raises(PlanError):
        localize_rule(rule, 0, {"p", "q"})


def test_carried_variables_minimal():
    """The mid relation ships only variables the far side needs."""
    rule = parse_rule(
        "R: out(@D, X) :- #link(@S, @D, C), q(@S, X, Unused), r(@D, X)."
    )
    send, final = localize_rule(rule, 0, {"out", "q", "r", "link"})
    carried = {a.name for a in send.head.args if hasattr(a, "name")}
    assert "X" in carried
    assert "Unused" not in carried


def test_mid_relation_names_unique():
    program = parse(
        """
        A: p(@S, X) :- #link(@S, @D, C), q(@D, X).
        B: p(@S, X) :- #link(@S, @D, C), r(@D, X).
        """
    )
    localized = localize(program)
    mids = [r.head.pred for r in localized.rules if "_mid" in r.head.pred]
    assert len(set(mids)) == len(mids) // 2 or len(set(mids)) >= 2

"""Regenerate the explain() golden snapshot used by tests/test_api.py.

Run:  PYTHONPATH=src python tests/data/regen_explain_snapshot.py
"""

import pathlib

from repro import api
from repro.ndlog import programs

compiled = api.compile(programs.shortest_path_safe(),
                       passes=["aggsel", "localize"])
target = pathlib.Path(__file__).parent / "shortest_path_safe_explain.txt"
target.write_text(compiled.explain() + "\n")
print(f"wrote {target}")

"""Regenerate the ndlint golden snapshots used by tests/test_analysis.py.

One report per builtin program, over the program *as written* (no
compile pipeline) -- so the snapshot for ``shortest_path`` documents
the expected ND201 divergence warning that aggregate selections later
remove, and every other shipped program documents its clean/info-only
profile.

Run:  PYTHONPATH=src python tests/data/lint/regen_lint_snapshots.py
"""

import pathlib

from repro.analysis import analyze
from repro.ndlog import programs
from repro.ndlog.pretty import format_analysis_report

BUILDERS = [
    "shortest_path",
    "shortest_path_safe",
    "shortest_path_dynamic",
    "distance_vector",
    "magic_dst",
    "magic_src_dst",
    "multi_query_magic",
    "reachability",
    "transitive_closure",
    "transitive_closure_nonlinear",
    "same_generation",
]

target_dir = pathlib.Path(__file__).parent / "snapshots"
target_dir.mkdir(exist_ok=True)
for name in BUILDERS:
    program = getattr(programs, name)()
    report = analyze(program, name=name)
    path = target_dir / f"{name}.txt"
    path.write_text(format_analysis_report(report) + "\n")
    print(f"wrote {path}")

"""Tests for the staged compile() -> CompiledProgram -> run()/deploy()
facade: the pass pipeline (toggleability, order-independence of the
semantics-preserving passes), explain() introspection, the error
taxonomy at the facade boundary, the Deployment handle, and the
deprecation shims' fixpoint equivalence."""

import itertools
import pathlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro import api
from repro.errors import (
    EvaluationError,
    NDlogValidationError,
    PlanError,
)
from repro.ndlog import parse, programs
from repro.topology import Overlay

FIGURE2_LINKS = [
    ("a", "b", 5), ("b", "a", 5),
    ("a", "c", 1), ("c", "a", 1),
    ("c", "b", 1), ("b", "c", 1),
    ("b", "d", 1), ("d", "b", 1),
    ("e", "a", 1), ("a", "e", 1),
]

#: Every semantics-preserving pass in the default registry.
PRESERVING = api.DEFAULT_REGISTRY.semantics_preserving_names()


def shortest_path_rows(passes, engine="psn"):
    compiled = api.compile(
        programs.shortest_path_safe(),
        passes=None if passes is None else list(passes),
    )
    result = compiled.run(engine=engine, facts={"link": FIGURE2_LINKS})
    return result.rows("shortestPath")


@pytest.fixture(scope="module")
def default_rows():
    return shortest_path_rows(None)


# ----------------------------------------------------------------------
# compile() basics
# ----------------------------------------------------------------------
class TestCompile:
    def test_compiles_source_and_program(self):
        from_source = api.compile(programs.SHORTEST_PATH_SAFE, name="sp")
        from_program = api.compile(programs.shortest_path_safe())
        assert from_source.applied_passes == from_program.applied_passes
        assert len(from_source.program.rules) == len(from_program.program.rules)

    def test_default_pipeline_is_registry_default(self):
        compiled = api.compile(programs.shortest_path_safe())
        assert compiled.applied_passes == \
            api.DEFAULT_REGISTRY.default_pipeline()

    def test_no_passes_keeps_program(self):
        program = programs.shortest_path_safe()
        compiled = api.compile(program, passes=[])
        assert compiled.program is program
        assert compiled.trace == ()

    def test_trace_snapshots_chain(self):
        compiled = api.compile(
            programs.shortest_path_safe(), passes=["aggsel", "localize"]
        )
        assert compiled.applied_passes == ("aggsel", "localize")
        first, second = compiled.trace
        assert first.before is compiled.source
        assert first.after is second.before
        assert second.after is compiled.program
        assert first.changed
        assert "path__best" in second.before.predicates()

    def test_before_after_pass_lookup(self):
        compiled = api.compile(
            programs.shortest_path_safe(), passes=["aggsel", "localize"]
        )
        assert compiled.before_pass("aggsel") is compiled.source
        assert compiled.after_pass("localize") is compiled.program
        assert compiled.before_pass("magic") is None

    def test_pass_options_forwarded(self):
        compiled = api.compile(
            programs.shortest_path_safe(),
            passes=[("reorder", {"pred": "path", "to_left": True})],
        )
        sp2 = next(r for r in compiled.program.rules if r.label == "SP2")
        # Left-recursive: the path literal now leads the body.
        assert sp2.body_literals[0].pred == "path"

    def test_validation_report_attached(self):
        compiled = api.compile(programs.shortest_path_safe())
        assert compiled.report is not None
        assert compiled.report.ok
        assert compiled.report.link_restricted_rules == ["SP2"]

    def test_strict_validation_raises(self):
        # Partially located: NDlog constraints apply and fail.
        bad = parse("p(@X) :- q(X).")
        with pytest.raises(NDlogValidationError) as excinfo:
            api.compile(bad)
        # The error names the escape hatch.
        assert "validate=False" in str(excinfo.value)
        # Non-strict: compiles, report carries the errors.
        compiled = api.compile(bad, strict=False, passes=[])
        assert not compiled.report.ok

    def test_plain_datalog_compiles_without_validate_false(self):
        # No location specifiers anywhere: plain Datalog is auto-detected
        # and validated without the NDlog distributed constraints.
        compiled = api.compile(programs.transitive_closure(), passes=[])
        assert compiled.report is not None and compiled.report.ok
        result = compiled.run(
            engine="psn", facts={"edge": [("a", "b"), ("b", "c")]}
        )
        assert ("a", "c") in result.rows("tc")

    def test_plain_datalog_keeps_non_distributed_checks(self):
        # Rule safety still applies to plain Datalog...
        with pytest.raises(NDlogValidationError):
            api.compile(parse("p(X, Y) :- q(X)."), passes=[])
        # ...and facts must still be ground.
        with pytest.raises(NDlogValidationError):
            api.compile(parse("f(X)."), passes=[])

    def test_plain_datalog_detection_requires_total_absence(self):
        # A single @ marker anywhere re-arms full validation.
        partially = parse("p(X) :- q(X), r(@Y).")
        with pytest.raises(NDlogValidationError):
            api.compile(partially)

    def test_validate_false_skips_validation(self):
        bad = parse("p(@X) :- q(X).")
        compiled = api.compile(bad, validate=False, passes=[])
        assert compiled.report is None

    def test_localized_idempotent(self):
        compiled = api.compile(programs.shortest_path_safe()).localized()
        assert compiled.localized() is compiled
        assert "localize" in compiled.applied_passes

    def test_recompiling_artifact_composes_instead_of_restarting(self):
        # The default pipeline must not run twice: re-compiling an
        # artifact returns it unchanged, and explicit passes extend the
        # existing trace (no duplicate aggsel view rules).
        first = api.compile(programs.shortest_path_safe())
        assert api.compile(first) is first
        extended = api.compile(first, passes=["localize"])
        assert extended.applied_passes == ("aggsel", "localize")
        assert extended.source is first.source
        labels = [r.label for r in extended.program.rules]
        assert labels.count("path_aggsel_b") == 1


# ----------------------------------------------------------------------
# Error taxonomy at the facade
# ----------------------------------------------------------------------
class TestErrorTaxonomy:
    def test_unknown_pass_is_plan_error(self):
        with pytest.raises(PlanError, match="unknown pass"):
            api.compile(programs.shortest_path_safe(), passes=["quantum"])

    def test_unknown_engine_is_plan_error(self):
        compiled = api.compile(programs.shortest_path_safe())
        with pytest.raises(PlanError, match="unknown engine"):
            compiled.run(engine="quantum")

    def test_pass_failure_carries_pass_name(self):
        # magic needs a query; this program has none.
        no_query = parse("p(@X) :- q(@X).", name="noquery")
        with pytest.raises(PlanError) as excinfo:
            api.compile(no_query, passes=["magic"])
        assert excinfo.value.pass_name == "magic"
        assert "magic" in str(excinfo.value)

    def test_bad_pass_options_carry_pass_name(self):
        with pytest.raises(PlanError) as excinfo:
            api.compile(
                programs.shortest_path_safe(),
                passes=[("reorder", {"bogus": 1})],
            )
        assert excinfo.value.pass_name == "reorder"

    def test_engine_runaway_is_evaluation_error_with_engine(self):
        compiled = api.compile(
            programs.transitive_closure(), validate=False, passes=[]
        )
        with pytest.raises(EvaluationError) as excinfo:
            compiled.run(
                engine="psn",
                facts={"edge": [("a", "b"), ("b", "c")]},
                max_steps=2,
            )
        assert excinfo.value.engine == "psn"

    def test_non_registry_pass_entry_rejected(self):
        with pytest.raises(PlanError, match="bad pass specifier"):
            api.compile(programs.shortest_path_safe(), passes=[42])

    def test_malformed_tuple_specifier_is_plan_error(self):
        # A 3-tuple (easy slip) must not leak a bare ValueError.
        with pytest.raises(PlanError, match="tuple pass specifiers"):
            api.compile(
                programs.shortest_path_safe(),
                passes=[("reorder", {"pred": "path"}, True)],
            )
        with pytest.raises(PlanError, match="tuple pass specifiers"):
            api.compile(
                programs.shortest_path_safe(), passes=[("reorder", "path")]
            )


# ----------------------------------------------------------------------
# The pass registry
# ----------------------------------------------------------------------
class TestPassRegistry:
    def test_canonical_order_and_flags(self):
        names = api.DEFAULT_REGISTRY.names()
        assert names == ("magic", "aggsel", "reorder", "costbased",
                         "seminaive", "localize")
        assert api.DEFAULT_REGISTRY.default_pipeline() == ("aggsel",)
        assert "seminaive" not in PRESERVING

    def test_duplicate_registration_rejected(self):
        registry = api.default_registry()
        with pytest.raises(PlanError, match="already registered"):
            registry.register(registry.get("aggsel"))

    def test_recompile_artifact_honours_caller_registry(self):
        registry = api.default_registry()
        registry.register(api.Pass("identity", lambda p: p, "no-op"))
        artifact = api.compile(programs.shortest_path_safe())
        extended = api.compile(artifact, passes=["identity"],
                               registry=registry)
        assert extended.applied_passes == ("aggsel", "identity")
        assert extended.registry is registry

    def test_wrapped_plan_error_does_not_duplicate_rule_prefix(self):
        registry = api.default_registry()

        def failing(program):
            raise PlanError("aggregate not monotonic", rule="SP3")

        registry.register(api.Pass("failing", failing, "always fails"))
        with pytest.raises(PlanError) as excinfo:
            api.compile(programs.shortest_path_safe(), passes=["failing"],
                        registry=registry)
        message = str(excinfo.value)
        assert excinfo.value.pass_name == "failing"
        assert excinfo.value.rule == "SP3"
        assert message.count("SP3") == 1

    def test_custom_pass_runs(self):
        registry = api.default_registry()
        seen = []

        def spy(program):
            seen.append(program.name)
            return program

        registry.register(api.Pass("spy", spy, "records the program"))
        compiled = api.compile(
            programs.shortest_path_safe(),
            passes=["spy", "aggsel"],
            registry=registry,
        )
        assert seen == ["shortest_path_safe"]
        assert compiled.applied_passes == ("spy", "aggsel")

    def test_describe_rows(self):
        rows = api.DEFAULT_REGISTRY.describe()
        assert [r[0] for r in rows] == list(api.DEFAULT_REGISTRY.names())
        aggsel_row = next(r for r in rows if r[0] == "aggsel")
        assert aggsel_row[1] == "on"


# ----------------------------------------------------------------------
# Pipeline equivalence: any enabled subset/order of the
# semantics-preserving passes computes the default pipeline's fixpoint.
# ----------------------------------------------------------------------
class TestPipelineEquivalence:
    @pytest.mark.parametrize(
        "subset",
        [
            subset
            for k in range(len(PRESERVING) + 1)
            for subset in itertools.combinations(PRESERVING, k)
        ],
        ids=lambda subset: "+".join(subset) or "none",
    )
    def test_every_subset_in_canonical_order(self, subset, default_rows):
        assert shortest_path_rows(subset) == default_rows

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(pipeline=st.permutations(list(PRESERVING)).flatmap(
        lambda perm: st.integers(min_value=0, max_value=len(perm)).map(
            lambda k: tuple(perm[:k])
        )
    ))
    def test_any_order_any_subset(self, pipeline, default_rows):
        assert shortest_path_rows(pipeline) == default_rows

    def test_engines_agree_on_compiled_program(self, default_rows):
        # The aggsel argmin view is PSN/BSN-only; the set-oriented
        # engines run the un-pruned pipeline.
        assert shortest_path_rows((), engine="seminaive") == default_rows
        assert shortest_path_rows((), engine="naive") == default_rows
        assert shortest_path_rows(("aggsel",), engine="bsn") == default_rows

    def test_magic_subsets_preserve_bound_query(self):
        source = """
        T1: tc(X, Y) :- edge(X, Y).
        T2: tc(X, Z) :- edge(X, Y), tc(Y, Z).
        Query: tc(a, Y).
        """
        edges = [("a", "b"), ("b", "c"), ("c", "d"), ("x", "y"), ("y", "a")]

        def answers(passes):
            compiled = api.compile(
                parse(source, name="tc_bound"), validate=False,
                passes=list(passes),
            )
            rows = compiled.run(engine="psn", facts={"edge": edges}).rows("tc")
            return frozenset(r for r in rows if r[0] == "a")

        baseline = answers([])
        assert baseline == {("a", "b"), ("a", "c"), ("a", "d")}
        for subset in itertools.combinations(("magic", "costbased",
                                              "reorder"), 2):
            for perm in itertools.permutations(subset):
                assert answers(perm) == baseline, perm
        # And magic actually restricted the computation.
        compiled = api.compile(
            parse(source), validate=False, passes=["magic"]
        )
        assert any("magic_tc" in p for p in compiled.program.predicates())

    def test_aggsel_orderings_on_unguarded_program(self):
        # Figure 1 without the cycle guard only terminates with
        # aggregate selections (Section 5.1.1); every ordering that
        # includes aggsel agrees.
        def rows(passes):
            compiled = api.compile(programs.shortest_path(),
                                   passes=list(passes))
            return compiled.run(
                engine="psn", facts={"link": FIGURE2_LINKS}
            ).rows("shortestPath")

        baseline = rows(["aggsel"])
        for extra in ("reorder", "costbased", "localize"):
            assert rows(["aggsel", extra]) == baseline
            assert rows([extra, "aggsel"]) == baseline


# ----------------------------------------------------------------------
# explain()
# ----------------------------------------------------------------------
class TestExplain:
    def test_snapshot(self):
        """explain() output is pinned; regenerate the golden file with
        tests/data/regen_explain_snapshot.py when the format changes."""
        compiled = api.compile(
            programs.shortest_path_safe(), passes=["aggsel", "localize"]
        )
        golden = pathlib.Path(__file__).parent / "data" / \
            "shortest_path_safe_explain.txt"
        assert compiled.explain() == golden.read_text().rstrip("\n")

    def test_deterministic(self):
        one = api.compile(programs.shortest_path_safe()).explain()
        two = api.compile(programs.shortest_path_safe()).explain()
        assert one == two

    def test_sections_present(self):
        compiled = api.compile(
            programs.shortest_path_safe(), passes=["aggsel", "localize"]
        )
        text = compiled.explain()
        assert "-- pass aggsel" in text
        assert "-- pass localize" in text
        assert "-- rewritten program --" in text
        assert "-- join plans --" in text
        # Per-pass rule diff markers and plan step metadata.
        assert "\n  + " in text and "\n  - " in text
        assert "[probe" in text and "[scan]" in text

    def test_join_plans_optional(self):
        compiled = api.compile(programs.shortest_path_safe())
        assert "-- join plans --" not in compiled.explain(join_plans=False)


# ----------------------------------------------------------------------
# Deployment
# ----------------------------------------------------------------------
def figure2_overlay() -> Overlay:
    """The five-node network of Figure 2 as a deterministic overlay."""
    costs = {
        ("a", "b"): 5.0, ("a", "c"): 1.0, ("b", "c"): 1.0,
        ("b", "d"): 1.0, ("a", "e"): 1.0,
    }
    links = {
        pair: {"hopcount": 1.0, "latency": cost, "reliability": 1.0,
               "random": cost}
        for pair, cost in costs.items()
    }
    nodes = sorted({n for pair in links for n in pair})
    return Overlay(nodes=nodes, host={n: n for n in nodes}, links=links)


class TestDeployment:
    @pytest.fixture(scope="class")
    def deployment(self):
        compiled = api.compile(programs.shortest_path_safe())
        deployment = compiled.deploy(topology=figure2_overlay(),
                                     metric="latency")
        deployment.advance()
        return deployment

    def test_routes_match_figure2(self, deployment):
        rows = {(s, d): (p, c)
                for s, d, p, c in deployment.rows("shortestPath")}
        assert rows[("a", "b")] == (("a", "c", "b"), 2.0)
        assert deployment.quiescent

    def test_query_rows_is_query_predicate(self, deployment):
        assert deployment.query_rows() == deployment.rows("shortestPath")

    def test_explain_passthrough(self, deployment):
        assert "-- pass localize" in deployment.explain()

    def test_watch_and_subscribe(self):
        compiled = api.compile(programs.shortest_path_safe())
        deployment = compiled.deploy(topology=figure2_overlay())
        tracker = deployment.watch("shortestPath")
        commits = []
        unsubscribe = deployment.subscribe(
            "shortestPath", lambda t, fact, sign: commits.append(sign)
        )
        deployment.advance()
        assert commits and tracker.convergence_time() > 0.0
        count = len(commits)
        unsubscribe()
        deployment.update("a", "link", ("a", "b", 0.5))
        deployment.advance()
        assert len(commits) == count  # unsubscribed: no further callbacks

    def test_update_reroutes_incrementally(self):
        compiled = api.compile(programs.shortest_path_safe())
        deployment = compiled.deploy(topology=figure2_overlay())
        deployment.advance()
        # Cheapen the direct a-b link below the a-c-b detour...
        deployment.update("a", "link", ("a", "b", 0.5))
        deployment.advance()
        rows = {(s, d): (p, c)
                for s, d, p, c in deployment.rows("shortestPath")}
        assert rows[("a", "b")] == (("a", "b"), 0.5)

    def test_unknown_node_is_network_error(self):
        from repro.errors import NetworkError

        compiled = api.compile(programs.shortest_path_safe())
        deployment = compiled.deploy(topology=figure2_overlay())
        for verb in (deployment.inject, deployment.update,
                     deployment.delete):
            with pytest.raises(NetworkError, match="unknown node 'nope'"):
                verb("nope", "link", ("nope", "x", 1.0))
        with pytest.raises(NetworkError, match="unknown node"):
            deployment.rows("link", node="nope")

    def test_inject_and_delete_roundtrip(self):
        compiled = api.compile(programs.shortest_path_safe())
        deployment = compiled.deploy(topology=figure2_overlay())
        deployment.advance()
        before = deployment.rows("link", node="a")
        deployment.inject("a", "link", ("a", "z", 9.0))
        deployment.advance()
        assert ("a", "z", 9.0) in deployment.rows("link", node="a")
        deployment.delete("a", "link", ("a", "z", 9.0))
        deployment.advance()
        assert deployment.rows("link", node="a") == before


# ----------------------------------------------------------------------
# Shim equivalence: the old entry points produce the new facade's
# fixpoints (acceptance criterion for the migration).
# ----------------------------------------------------------------------
class TestShimEquivalence:
    def test_run_centralized_matches_api(self, default_rows):
        from repro import core

        with pytest.deprecated_call():
            old = core.run_centralized(
                programs.shortest_path_safe(),
                facts={"link": FIGURE2_LINKS},
                aggregate_selections=True,
            )
        assert old.rows("shortestPath") == default_rows

    def test_compile_program_matches_api(self):
        from repro import core

        with pytest.deprecated_call():
            old = core.compile_program(
                programs.shortest_path(), aggregate_selections=True,
                localized=True,
            )
        new = api.compile(
            programs.shortest_path(), passes=["aggsel", "localize"]
        ).program
        from repro.ndlog.pretty import format_program

        assert format_program(old) == format_program(new)

    def test_core_engines_table_keeps_module_values(self):
        # Old internal pattern: core.ENGINES[name].evaluate(program, db).
        from repro import core
        from repro.engine import Database

        program = programs.transitive_closure()
        db = Database.for_program(program)
        db.load_facts("edge", [("x", "y"), ("y", "z")])
        result = core.ENGINES["psn"].evaluate(program, db)
        assert ("x", "z") in result.rows("tc")

    def test_cluster_accepts_program_and_compiled_equally(self):
        from repro.runtime import Cluster, RuntimeConfig

        overlay = figure2_overlay()
        old_style = Cluster(
            overlay, programs.shortest_path_safe(),
            RuntimeConfig(aggregate_selections=True),
        )
        old_style.run()
        new_style = api.compile(programs.shortest_path_safe()) \
            .deploy(topology=overlay)
        new_style.advance()
        assert old_style.rows("shortestPath") == \
            new_style.rows("shortestPath")

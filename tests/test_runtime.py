"""Distributed runtime tests: deployment, correctness against graph
ground truth, FIFO-based eventual consistency (Theorem 4), dynamics,
soft state, and the transport optimizations."""

import heapq

import pytest

from repro.ndlog import parse, programs
from repro.runtime import (
    CachePolicy,
    Cluster,
    LinkUpdateDriver,
    RuntimeConfig,
    SoftStateManager,
)
from repro.topology import build_overlay, transit_stub
from repro.topology.neighborhood import hop_distances


def small_overlay(n=14, degree=3, seed=5):
    return build_overlay(transit_stub(seed=seed), n_nodes=n, degree=degree,
                         seed=seed)


def dijkstra_costs(costs_by_pair, nodes):
    adjacency = {}
    for (a, b), cost in costs_by_pair.items():
        adjacency.setdefault(a, []).append((b, cost))
        adjacency.setdefault(b, []).append((a, cost))
    out = {}
    for source in nodes:
        dist = {source: 0.0}
        heap = [(0.0, source)]
        while heap:
            d, node = heapq.heappop(heap)
            if d > dist.get(node, float("inf")):
                continue
            for nxt, w in adjacency.get(node, ()):
                nd = d + w
                if nd < dist.get(nxt, float("inf")):
                    dist[nxt] = nd
                    heapq.heappush(heap, (nd, nxt))
        for target, d in dist.items():
            if target != source:
                out[(source, target)] = d
    return out


def cluster_costs(cluster):
    got = {}
    for s, d, _p, c in cluster.rows("shortestPath"):
        if s != d:
            key = (s, d)
            got[key] = min(c, got.get(key, float("inf")))
    return got


@pytest.fixture(scope="module")
def overlay():
    return small_overlay()


class TestStaticConvergence:
    def test_all_pairs_hopcount_matches_bfs(self, overlay):
        cluster = Cluster(
            overlay, programs.shortest_path(),
            RuntimeConfig(aggregate_selections=True),
            link_loads={"link": "hopcount"},
        )
        cluster.run()
        got = cluster_costs(cluster)
        for source in overlay.nodes:
            for target, d in hop_distances(overlay, source).items():
                if target != source:
                    assert got[(source, target)] == d

    def test_all_pairs_latency_matches_dijkstra(self, overlay):
        cluster = Cluster(
            overlay, programs.shortest_path(),
            RuntimeConfig(aggregate_selections=True),
            link_loads={"link": "latency"},
        )
        cluster.run()
        want = dijkstra_costs(
            {pair: m["latency"] for pair, m in overlay.links.items()},
            overlay.nodes,
        )
        assert cluster_costs(cluster) == pytest.approx(want)

    @pytest.mark.slow
    def test_safe_program_without_aggsel_also_converges(self, overlay):
        cluster = Cluster(
            overlay, programs.shortest_path_safe(),
            RuntimeConfig(aggregate_selections=False),
            link_loads={"link": "hopcount"},
        )
        cluster.run()
        got = cluster_costs(cluster)
        dist = hop_distances(overlay, overlay.nodes[0])
        for target, d in dist.items():
            if target != overlay.nodes[0]:
                assert got[(overlay.nodes[0], target)] == d

    def test_reachability_program(self, overlay):
        cluster = Cluster(
            overlay, programs.reachability(), RuntimeConfig(),
            link_loads={"link": "hopcount"},
        )
        cluster.run()
        reach = cluster.rows("reach")
        n = len(overlay.nodes)
        assert len(reach) == n * (n - 1) + n  # includes self via cycles

    def test_path_vectors_are_real_paths(self, overlay):
        cluster = Cluster(
            overlay, programs.shortest_path(),
            RuntimeConfig(aggregate_selections=True),
            link_loads={"link": "latency"},
        )
        cluster.run()
        for s, d, p, _c in cluster.rows("shortestPath"):
            assert p[0] == s and p[-1] == d
            for a, b in zip(p, p[1:]):
                assert overlay.link_metrics(a, b) is not None

    def test_tuples_only_flow_along_links(self, overlay):
        cluster = Cluster(
            overlay, programs.shortest_path(),
            RuntimeConfig(aggregate_selections=True),
            link_loads={"link": "hopcount"},
        )
        cluster.run()
        assert cluster.stats.dropped_no_link == 0

    def test_convergence_tracker(self, overlay):
        cluster = Cluster(
            overlay, programs.shortest_path(),
            RuntimeConfig(aggregate_selections=True),
            link_loads={"link": "hopcount"},
        )
        tracker = cluster.watch("shortestPath")
        end = cluster.run()
        assert 0 < tracker.convergence_time() <= end
        curve = tracker.results_over_time()
        assert curve[-1][1] == 1.0


class TestBatchedTicks:
    def test_batched_tick_books_full_cpu_time(self):
        """A tick that consumes k deltas keeps the node booked for
        k * cpu_delay of virtual CPU: throughput accounting must not
        depend on cpu_batch (only sub-batch commit times may shift)."""
        overlay = small_overlay(n=4, degree=2, seed=8)
        program = parse(
            """
            materialize(item, infinity, infinity, keys(1, 2)).
            materialize(echo, infinity, infinity, keys(1, 2)).
            E1: echo(@S, X) :- #item(@S, X).
            """
        )
        cluster = Cluster(overlay, program,
                          RuntimeConfig(validate=False, cpu_batch=16),
                          link_loads={})
        node = overlay.nodes[0]
        for i in range(10):
            cluster.inject(node, "item", (node, i))
        end = cluster.run()
        # 10 item commits then 10 echo commits, all on one node: the
        # first tick fires one cpu_delay after injection and each batch
        # stays booked per delta, so quiescence lands at 20 delays.
        assert end == pytest.approx(20 * cluster.config.cpu_delay)

    def test_cpu_batch_preserves_convergence_regime(self):
        """Batched and per-delta schedules process the same deltas and
        converge in the same virtual-time regime."""
        overlay = small_overlay(n=8, degree=2, seed=8)

        def run(batch):
            cluster = Cluster(
                overlay, programs.shortest_path(),
                RuntimeConfig(aggregate_selections=True, cpu_batch=batch),
                link_loads={"link": "hopcount"},
            )
            end = cluster.run()
            return end, cluster

        end_batched, batched = run(16)
        end_unbatched, unbatched = run(1)
        assert cluster_costs(batched) == cluster_costs(unbatched)
        # Same per-delta CPU accounting: end times agree within the
        # sub-batch commit shift (deltas commit at batch start).
        assert end_batched == pytest.approx(end_unbatched, rel=0.2)


class TestDynamics:
    def test_link_update_reconverges(self, overlay):
        cluster = Cluster(
            overlay, programs.shortest_path_dynamic(),
            RuntimeConfig(aggregate_selections=True),
            link_loads={"link": "random"},
        )
        driver = LinkUpdateDriver(cluster, metric="random", seed=3)
        cluster.run()
        for _ in range(3):
            driver.apply_burst()
            cluster.run()
        want = dijkstra_costs(driver.costs, overlay.nodes)
        assert cluster_costs(cluster) == pytest.approx(want)

    def test_bursts_midflight_still_consistent(self, overlay):
        """Theorem 4: bursts landing before the previous fixpoint
        completes (Figure 14's regime) still quiesce to the fresh
        state."""
        cluster = Cluster(
            overlay, programs.shortest_path_dynamic(),
            RuntimeConfig(aggregate_selections=True),
            link_loads={"link": "random"},
        )
        driver = LinkUpdateDriver(cluster, metric="random", seed=4)
        # Interleave bursts every 0.2 virtual seconds from the start.
        driver.schedule_bursts([0.2, 0.4, 0.6, 0.8])
        cluster.run()
        want = dijkstra_costs(driver.costs, overlay.nodes)
        assert cluster_costs(cluster) == pytest.approx(want)

    def test_burst_cheaper_than_from_scratch(self, overlay):
        cluster = Cluster(
            overlay, programs.shortest_path_dynamic(),
            RuntimeConfig(aggregate_selections=True),
            link_loads={"link": "random"},
        )
        driver = LinkUpdateDriver(cluster, metric="random", seed=5)
        cluster.run()
        initial = cluster.stats.total_bytes()
        driver.apply_burst()
        cluster.run()
        burst = cluster.stats.total_bytes() - initial
        assert burst < 0.5 * initial


class TestTransportModes:
    def test_periodic_buffering_reduces_messages(self, overlay):
        def run_with(interval):
            cluster = Cluster(
                overlay, programs.shortest_path(),
                RuntimeConfig(aggregate_selections=True,
                              buffer_interval=interval),
                link_loads={"link": "random"},
            )
            cluster.run()
            return cluster

        eager = run_with(None)
        periodic = run_with(0.4)
        assert periodic.stats.total_mb() < eager.stats.total_mb()
        # Same answers either way.
        assert cluster_costs(eager) == cluster_costs(periodic)

    def test_sharing_reduces_bytes_not_answers(self, overlay):
        from repro.experiments.fig12 import merged_program, share_specs

        program, link_loads = merged_program()

        def run_with(share):
            config = RuntimeConfig(
                aggregate_selections=True,
                share_delay=0.3 if share else None,
                share_specs=share_specs() if share else {},
            )
            cluster = Cluster(overlay, program, config,
                              link_loads=link_loads)
            cluster.run()
            return cluster

        plain = run_with(False)
        shared = run_with(True)
        assert shared.stats.total_mb() < plain.stats.total_mb()
        for pred in ("shortestPath_lat", "shortestPath_rel",
                     "shortestPath_rnd"):
            assert plain.rows(pred) == shared.rows(pred)


class TestMagicAndCaching:
    def run_queries(self, overlay, queries, caching):
        config = RuntimeConfig(
            aggregate_selections=True,
            cache=CachePolicy(query_pred="pathQ__best") if caching else None,
        )
        cluster = Cluster(overlay, programs.multi_query_magic(), config,
                          link_loads={"link": "hopcount"})
        for index, (src, dst) in enumerate(queries):
            cluster.sim.at(0.2 * index,
                           lambda s=src, d=dst, i=index: cluster.inject(
                               s, "magicQuery", (s, f"q{i}", d)))
        cluster.run()
        return cluster

    def test_magic_query_answers_correct(self, overlay):
        nodes = overlay.nodes
        queries = [(nodes[0], nodes[-1]), (nodes[3], nodes[7])]
        cluster = self.run_queries(overlay, queries, caching=False)
        results = {args[1]: args[3] for args in cluster.rows("queryResult")}
        for index, (src, dst) in enumerate(queries):
            assert results[f"q{index}"] == hop_distances(overlay, src)[dst]

    def test_cached_answers_remain_correct(self, overlay):
        nodes = overlay.nodes
        dst = nodes[-1]
        queries = [(nodes[i], dst) for i in range(5)]
        cluster = self.run_queries(overlay, queries, caching=True)
        results = {args[1]: args[3] for args in cluster.rows("queryResult")}
        for index, (src, _d) in enumerate(queries):
            assert results[f"q{index}"] == hop_distances(overlay, src)[dst]
        hits = sum(node.cache_hits for node in cluster.nodes.values())
        assert hits > 0

    def test_caching_saves_bandwidth_on_repeated_destination(self, overlay):
        nodes = overlay.nodes
        dst = nodes[-1]
        queries = [(nodes[i], dst) for i in range(6)]
        plain = self.run_queries(overlay, queries, caching=False)
        cached = self.run_queries(overlay, queries, caching=True)
        assert cached.stats.total_mb() < plain.stats.total_mb()


class TestSoftState:
    def test_empty_cluster_rejected_with_clear_error(self):
        """Regression: an empty cluster used to surface as a bare
        ``StopIteration`` out of the lifetime scan; it must be a clear
        library error (``NetworkError``) instead."""
        import types

        from repro.errors import NetworkError

        empty = types.SimpleNamespace(nodes={})
        with pytest.raises(NetworkError, match="at least one node"):
            SoftStateManager(empty)

    def test_expiry_without_refresh(self):
        overlay = small_overlay(n=8, degree=2, seed=8)
        program = parse(
            """
            materialize(beacon, 1.0, infinity, keys(1, 2)).
            B1: seen(@D, S) :- #beacon(@S, @D, C).
            """
        )
        cluster = Cluster(overlay, program, RuntimeConfig(validate=False),
                          link_loads={"beacon": "hopcount"})
        manager = SoftStateManager(cluster, sweep_interval=0.25)
        manager.install()
        cluster.run(until=3.0)
        # All beacon tuples had a 1-second TTL and were never refreshed.
        assert manager.expired_count > 0
        assert not cluster.rows("beacon")

    def test_refresh_keeps_facts_alive(self):
        overlay = small_overlay(n=8, degree=2, seed=8)
        program = parse(
            """
            materialize(beacon, 1.0, infinity, keys(1, 2)).
            B1: seen(@D, S) :- #beacon(@S, @D, C).
            """
        )
        cluster = Cluster(overlay, program, RuntimeConfig(validate=False),
                          link_loads={"beacon": "hopcount"})
        manager = SoftStateManager(cluster, sweep_interval=0.25)
        manager.install()
        rows_by_node = {}
        for a, b, c in overlay.link_rows("hopcount"):
            rows_by_node.setdefault(a, []).append((a, b, c))
        manager.schedule_refresh("beacon", rows_by_node, interval=0.5,
                                 rounds=6)
        cluster.run(until=2.9)
        assert cluster.rows("beacon")

"""Tests for the provenance subsystem: capture across all four engines,
why/why-not queries, distributed lineage (sim and live), the wire tag,
and the count/graph auditor."""

import random

import pytest

import repro
from repro.engine.database import Database
from repro.engine.facts import Fact
from repro.engine.psn import PSNEngine
from repro.errors import PlanError
from repro.ndlog import programs
from repro.ndlog.pretty import format_derivation, format_why_not
from repro.net.live import decode_message, encode_message
from repro.net.message import Message, NetDelta
from repro.provenance import (
    ProvenanceStore,
    audit_engine,
    why,
    why_not,
)
from repro.topology import build_overlay, transit_stub

LINKS = [
    ("a", "b", 1), ("b", "c", 1), ("a", "c", 5), ("c", "d", 1),
    ("b", "d", 4),
]


def path_links(path, links=LINKS):
    """Independent reference recomputation: the base link facts a path
    vector rests on."""
    costs = {(a, b): c for a, b, c in links}
    return {
        ("link", (a, b, costs[(a, b)])) for a, b in zip(path, path[1:])
    }


def undirected_edges(pairs):
    return {frozenset(p) for p in pairs}


# ----------------------------------------------------------------------
# Centralized capture: all four engines
# ----------------------------------------------------------------------
class TestCentralWhy:
    @pytest.mark.parametrize("engine,passes,opts", [
        ("naive", [], {}),
        ("seminaive", [], {}),
        ("psn", ["aggsel"], {}),
        ("psn", ["aggsel"], {"batch_size": 8}),
        ("bsn", ["aggsel"], {"batch_size": 8}),
    ])
    def test_why_leaves_are_exactly_the_path_links(self, engine, passes,
                                                   opts):
        compiled = repro.compile(programs.shortest_path_safe(),
                                 passes=passes, provenance=True)
        result = compiled.run(engine=engine, facts={"link": LINKS}, **opts)
        for row in result.rows("shortestPath"):
            tree = result.why("shortestPath", row)
            assert tree is not None
            assert all(leaf.pred == "link" for leaf in tree.leaves())
            got = {(leaf.pred, leaf.args) for leaf in tree.leaves()}
            assert got == path_links(row[2]), row

    def test_tree_structure_carries_rules(self):
        compiled = repro.compile(programs.shortest_path_safe(),
                                 passes=["aggsel"], provenance=True)
        result = compiled.run(engine="psn", facts={"link": LINKS})
        row = next(r for r in result.rows("shortestPath")
                   if r[0] == "a" and r[1] == "d")
        tree = result.why("shortestPath", row)
        assert tree.rule == "SP4"
        child_rules = {child.rule for child in tree.children}
        assert "SP3" in child_rules          # the aggregate subtree
        text = format_derivation(tree)
        assert "SP4" in text and "(base)" in text
        assert "link(a, b, 1)" in text

    def test_why_unknown_fact_returns_none(self):
        compiled = repro.compile(programs.shortest_path_safe(),
                                 passes=["aggsel"], provenance=True)
        result = compiled.run(engine="psn", facts={"link": LINKS})
        assert result.why("shortestPath", ("a", "z", (), 0)) is None

    def test_why_base_fact_is_a_leaf(self):
        compiled = repro.compile(programs.shortest_path_safe(),
                                 passes=["aggsel"], provenance=True)
        result = compiled.run(engine="psn", facts={"link": LINKS})
        tree = result.why("link", ("a", "b", 1))
        assert tree.is_base and not tree.children

    def test_depth_cut_marks_truncation(self):
        compiled = repro.compile(programs.shortest_path_safe(),
                                 passes=["aggsel"], provenance=True)
        result = compiled.run(engine="psn", facts={"link": LINKS})
        row = next(r for r in result.rows("shortestPath")
                   if r[0] == "a" and r[1] == "d")
        tree = result.why("shortestPath", row, max_depth=2)
        flat = [tree]
        for node in flat:
            flat.extend(node.children)
        assert any(node.truncated for node in flat)

    def test_recompiling_artifact_never_mutates_it(self):
        base = repro.compile(programs.shortest_path_safe(),
                             passes=["aggsel"])
        armed = repro.compile(base, provenance=True)
        assert armed is not base and armed.provenance
        assert base.provenance is False
        disarmed = repro.compile(armed, provenance=False)
        assert disarmed is not armed and not disarmed.provenance
        assert armed.provenance
        # No flag change and no passes: the artifact passes through.
        assert repro.compile(armed) is armed

    def test_shared_recorder_across_engines_stays_clean(self):
        # naive's set-semantics capture must not leak into a later PSN
        # run sharing the same recorder, and PSN's clock binding must
        # not leak back either.
        recorder = ProvenanceStore().recorder()
        compiled = repro.compile(programs.shortest_path_safe(), passes=[])
        compiled.run(engine="naive", facts={"link": LINKS},
                     provenance=recorder)
        assert recorder.dedup is False and recorder.clock is None
        prog = repro.compile(programs.shortest_path_dynamic(),
                             passes=["aggsel"]).program
        engine = PSNEngine(prog, db=Database.for_program(prog),
                           provenance=ProvenanceStore().recorder())
        engine.insert("link", ("a", "b", 1))
        engine.insert("link", ("b", "c", 1))
        engine.run()
        engine.insert("link", ("a", "b", 1))   # duplicate: count bump
        engine.run()
        assert audit_engine(engine).ok

    def test_off_by_default_and_run_override(self):
        compiled = repro.compile(programs.shortest_path_safe(),
                                 passes=["aggsel"])
        result = compiled.run(engine="psn", facts={"link": LINKS})
        assert result.provenance is None
        with pytest.raises(PlanError):
            result.why("link", ("a", "b", 1))
        # Per-run override without recompiling.
        result = compiled.run(engine="psn", facts={"link": LINKS},
                              provenance=True)
        assert result.provenance is not None
        assert result.why("link", ("a", "b", 1)).is_base

    @pytest.mark.parametrize("use_plans", [True, False])
    @pytest.mark.parametrize("batch_size", [1, 8])
    def test_planned_interpreted_batched_graphs_identical(self, use_plans,
                                                          batch_size):
        """Planned vs interpreted executors and batched vs per-delta
        commits must record byte-identical derivation graphs."""
        prog = repro.compile(programs.shortest_path_safe(),
                             passes=["aggsel"]).program
        store = ProvenanceStore()
        db = Database.for_program(prog)
        db.load_facts("link", LINKS)
        engine = PSNEngine(prog, db=db, use_plans=use_plans,
                           batch_size=batch_size,
                           provenance=store.recorder())
        engine.fixpoint()
        assert audit_engine(engine).ok
        graph = {
            (d.rule, d.head, d.body)
            for row in engine.db.table("path").rows()
            for d in store.derivations_of("path", row)
        }
        if not hasattr(type(self), "_reference_graph"):
            type(self)._reference_graph = graph
        assert graph == type(self)._reference_graph

    def test_engines_agree_on_derivation_graph_shape(self):
        """All engines record the same (rule, head, body) derivations for
        a stratified program (counts differ; the *graph* must not)."""
        def graph(engine, passes):
            compiled = repro.compile(programs.shortest_path_safe(),
                                     passes=passes, provenance=True)
            result = compiled.run(engine=engine, facts={"link": LINKS})
            edges = set()
            for pred in ("path", "shortestPath"):
                for row in result.rows(pred):
                    for d in result.provenance.derivations_of(pred, row):
                        edges.add((d.rule, d.head, tuple(d.body)))
            return edges

        reference = graph("psn", [])
        assert reference
        assert graph("naive", []) == reference
        assert graph("seminaive", []) == reference
        assert graph("bsn", []) == reference


# ----------------------------------------------------------------------
# why_not: failed-body analysis
# ----------------------------------------------------------------------
class TestWhyNot:
    def make_result(self):
        compiled = repro.compile(programs.shortest_path_safe(),
                                 passes=["aggsel"], provenance=True)
        return compiled.run(engine="psn", facts={"link": LINKS})

    def test_present_fact_short_circuits(self):
        result = self.make_result()
        report = result.why_not("link", ("a", "b", 1))
        assert report.present

    def test_base_fact_never_inserted(self):
        result = self.make_result()
        report = result.why_not("link", ("a", "z", 1))
        assert not report.present and report.is_base
        assert "never inserted" in format_why_not(report)

    def test_blocked_rule_names_the_missing_literal(self):
        result = self.make_result()
        # z is not a node: every rule for shortestPath is blocked.
        report = result.why_not("shortestPath", ("a", "z", None, None))
        assert not report.present and not report.is_base
        assert report.failures
        blocked = [f for f in report.failures if f.status == "blocked"]
        assert blocked
        # The nested analysis bottoms out at the missing link relation.
        text = format_why_not(report)
        assert "blocked on" in text
        assert "link" in text

    def test_wildcards_match_any_position(self):
        result = self.make_result()
        assert result.why_not("shortestPath", ("a", "d", None, None)).present

    def test_why_not_without_capture(self):
        compiled = repro.compile(programs.shortest_path_safe(),
                                 passes=["aggsel"])
        result = compiled.run(engine="psn", facts={"link": LINKS})
        report = result.why_not("shortestPath", ("a", "z", None, None))
        assert not report.present


# ----------------------------------------------------------------------
# The auditor as a regression oracle
# ----------------------------------------------------------------------
def interleaved_burst_engine(batch_size, seed=42, ops=120):
    prog = repro.compile(programs.shortest_path_dynamic(),
                         passes=["aggsel"]).program
    store = ProvenanceStore()
    engine = PSNEngine(prog, db=Database.for_program(prog),
                       batch_size=batch_size, provenance=store.recorder())
    rng = random.Random(seed)
    nodes = ["a", "b", "c", "d", "e"]
    state = {}
    for _ in range(ops):
        a, b = rng.sample(nodes, 2)
        if (a, b) in state and rng.random() < 0.4:
            engine.delete("link", (a, b, state.pop((a, b))))
        else:
            cost = rng.randint(1, 5)
            state[(a, b)] = cost
            engine.update("link", (a, b, cost))
        if rng.random() < 0.3:
            engine.run()
    engine.run()
    return engine


class TestAuditor:
    @pytest.mark.parametrize("batch_size", [1, 4, 16])
    def test_zero_mismatches_under_interleaved_bursts(self, batch_size):
        engine = interleaved_burst_engine(batch_size)
        report = audit_engine(engine)
        assert report.ok, report.mismatches[:5]
        assert report.checked > 0
        if batch_size > 1:
            # The oracle exercised the cancellation path, not just the
            # reference path.
            assert engine.cancelled > 0

    def test_batched_and_reference_paths_agree(self):
        counts = []
        for batch_size in (1, 16):
            engine = interleaved_burst_engine(batch_size)
            counts.append({
                pred: {args: table.count(args) for args in table.rows()}
                for pred, table in engine.db.tables.items()
            })
        assert counts[0] == counts[1]

    def test_auditor_detects_a_seeded_undercount(self):
        engine = interleaved_burst_engine(1)
        table = engine.db.table("path")
        args = next(iter(table.rows()))
        table.force_delete(args)   # tamper: the graph still supports it
        report = audit_engine(engine)
        assert not report.ok
        assert any(m.kind == "orphan" and m.fact == Fact("path", args)
                   for m in report.mismatches)

    def test_auditor_detects_a_seeded_overcount(self):
        engine = interleaved_burst_engine(1)
        table = engine.db.table("path")
        args = next(iter(table.rows()))
        table.insert(args)         # tamper: an unexplained extra count
        report = audit_engine(engine)
        assert not report.ok
        assert any(m.kind == "count" for m in report.mismatches)

    def test_audit_requires_capture(self):
        prog = repro.compile(programs.shortest_path_dynamic(),
                             passes=["aggsel"]).program
        engine = PSNEngine(prog, db=Database.for_program(prog))
        with pytest.raises(ValueError):
            audit_engine(engine)


# ----------------------------------------------------------------------
# Distributed lineage: simulator
# ----------------------------------------------------------------------
def sim_deployment(n_nodes=10, seed=5):
    compiled = repro.compile(programs.shortest_path_dynamic(),
                             passes=["aggsel", "localize"], provenance=True)
    overlay = build_overlay(transit_stub(seed=seed), n_nodes=n_nodes,
                            degree=3, seed=seed)
    deployment = compiled.deploy(topology=overlay,
                                 link_loads={"link": "hopcount"})
    return deployment, overlay


class TestDistributedProvenance:
    def test_why_traces_across_nodes(self):
        deployment, overlay = sim_deployment()
        deployment.advance()
        rows = sorted(deployment.query_rows())
        assert rows
        multi_hop = [r for r in rows if len(r[2]) > 2]
        assert multi_hop, "need a multi-hop route to prove cross-node lineage"
        for row in rows:
            tree = deployment.why("shortestPath", row)
            assert tree is not None
            leaves = tree.leaves()
            assert all(leaf.pred == "link" for leaf in leaves)
            # The localized rules legitimately consult both directions
            # of each physical link (one to join, one to route the head
            # back), so the reference check compares undirected edges.
            got = undirected_edges(
                (leaf.args[0], leaf.args[1]) for leaf in leaves
            )
            expected = undirected_edges(zip(row[2], row[2][1:]))
            assert got == expected, row
        # Multi-hop derivations involve strands at several nodes.
        tree = deployment.why("shortestPath", multi_hop[0])
        nodes_in_tree = set()
        stack = [tree]
        while stack:
            node = stack.pop()
            if node.node is not None:
                nodes_in_tree.add(node.node)
            stack.extend(node.children)
        assert len(nodes_in_tree) >= 2

    def test_remote_deltas_carry_the_wire_tag(self):
        deployment, _overlay = sim_deployment()
        deployment.advance()
        store = deployment.provenance
        assert store.arrivals, "no provenance tags crossed the network"
        for arrival in list(store.arrivals)[:50]:
            derivation = store.derivation(arrival.prov_id)
            assert derivation is not None
            assert derivation.head == arrival.fact
            assert derivation.node != arrival.node

    def test_audit_clean_after_convergence_and_link_failure(self):
        deployment, overlay = sim_deployment()
        deployment.advance()
        assert deployment.audit().ok
        a, b, cost = overlay.link_rows("hopcount")[0]
        deployment.delete(a, "link", (a, b, cost))
        deployment.delete(b, "link", (b, a, cost))
        deployment.advance()
        report = deployment.audit()
        assert report.ok, report.mismatches[:5]
        assert report.strict

    def test_why_not_diagnoses_a_partitioned_destination(self):
        deployment, overlay = sim_deployment(n_nodes=8, seed=11)
        deployment.advance()
        victim = sorted(overlay.nodes)[-1]
        # Sever every link touching the victim: it becomes unreachable.
        for x, y, cost in overlay.link_rows("hopcount"):
            if victim in (x, y):
                deployment.delete(x, "link", (x, y, cost))
        deployment.advance()
        source = next(n for n in overlay.nodes if n != victim)
        assert not any(
            r[0] == source and r[1] == victim
            for r in deployment.query_rows()
        )
        report = deployment.why_not(
            "shortestPath", (source, victim, None, None))
        assert not report.present
        text = format_why_not(report)
        assert "blocked on" in text

    def test_deploy_without_capture_raises_on_why(self):
        compiled = repro.compile(programs.shortest_path_dynamic(),
                                 passes=["aggsel", "localize"])
        overlay = build_overlay(transit_stub(seed=5), n_nodes=6, degree=3,
                                seed=5)
        deployment = compiled.deploy(topology=overlay,
                                     link_loads={"link": "hopcount"})
        deployment.advance()
        assert deployment.provenance is None
        with pytest.raises(PlanError):
            deployment.why("shortestPath", ("n0", "n1", (), 1))
        # why_not needs no capture.
        report = deployment.why_not("shortestPath", ("n0", "n0", None, None))
        assert not report.present


# ----------------------------------------------------------------------
# Distributed lineage: live target (acceptance: sim AND live)
# ----------------------------------------------------------------------
class TestLiveProvenance:
    def test_live_inproc_why_and_audit(self):
        compiled = repro.compile(programs.shortest_path_dynamic(),
                                 passes=["aggsel", "localize"],
                                 provenance=True)
        overlay = build_overlay(transit_stub(seed=7), n_nodes=8, degree=3,
                                seed=7)
        config = repro.RuntimeConfig(cpu_delay=2e-4)
        deployment = compiled.deploy(
            topology=overlay, config=config,
            link_loads={"link": "hopcount"},
            target="live", channels="inproc",
        )
        assert deployment.converge(timeout=60.0)
        rows = sorted(deployment.query_rows())
        assert rows
        for row in rows:
            tree = deployment.why("shortestPath", row)
            assert tree is not None
            got = undirected_edges(
                (leaf.args[0], leaf.args[1]) for leaf in tree.leaves()
            )
            assert got == undirected_edges(zip(row[2], row[2][1:])), row
        report = deployment.audit()
        assert report.ok, report.mismatches[:5]
        assert deployment.provenance.arrivals


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
class TestWireTag:
    def test_prov_round_trips_and_defaults_to_none(self):
        message = Message(src="a", dst="b", deltas=(
            NetDelta("path", ("a", "b", ("a", "b"), 1), 1, prov=42),
            NetDelta("link", ("a", "b", 1), -1),
        ))
        decoded = decode_message(encode_message(message))
        assert decoded.deltas[0].prov == 42
        assert decoded.deltas[1].prov is None
        assert decoded.deltas == message.deltas

    def test_prov_is_metadata_not_identity(self):
        # Equality and the byte model ignore the tag: provenance must
        # not perturb netting, dedup, or the traffic figures.
        assert NetDelta("p", ("a",), 1, prov=7) == NetDelta("p", ("a",), 1)
        assert (NetDelta("p", ("a",), 1, prov=7).payload_size()
                == NetDelta("p", ("a",), 1).payload_size())

    def test_wire_layout_unchanged_without_provenance(self):
        message = Message(src="a", dst="b",
                          deltas=(NetDelta("link", ("a", "b", 1), 1),))
        assert b"42" not in encode_message(message)
        raw = encode_message(message)
        assert b'"t":[["link",1,["a","b",1]]]' in raw


# ----------------------------------------------------------------------
# Store internals
# ----------------------------------------------------------------------
class TestStore:
    def test_interning_merges_duplicate_derivations(self):
        store = ProvenanceStore()
        head = Fact("p", ("x",))
        body = (Fact("q", ("x",)),)
        first = store.record("r1", head, body, 1)
        second = store.record("r1", head, body, 1)
        assert first == second
        assert store.live_support(head) == 2
        assert len(store.live_records(head)) == 1

    def test_minus_decrements_and_floors(self):
        store = ProvenanceStore()
        head = Fact("p", ("x",))
        body = (Fact("q", ("x",)),)
        store.record("r1", head, body, 1)
        store.record("r1", head, body, -1)
        assert store.live_support(head) == 0
        store.record("r1", head, body, -1)
        assert store.floored == 1

    def test_retract_fact_spares_view_heads(self):
        store = ProvenanceStore()
        store.view_preds.add("spCost")
        view_fact = Fact("spCost", ("a", "b", 1))
        plain_fact = Fact("path", ("a", "b", 1))
        store.record("SP3", view_fact, (plain_fact,), 1)
        store.record("SP2", plain_fact, (), 1)
        store.retract_fact(view_fact)
        store.retract_fact(plain_fact)
        assert store.live_support(view_fact) == 1
        assert store.live_support(plain_fact) == 0

    def test_why_prefers_context_coherent_alternatives(self):
        # Two equal-valued contributions support the same aggregate
        # output; the tree must follow the witness its sibling joined.
        store = ProvenanceStore()
        store.view_preds.add("best")
        out = Fact("best", ("d", 2))
        via_b = Fact("route", ("d", "b", 2))
        via_c = Fact("route", ("d", "c", 2))
        store.record("AGG", out, (via_b,), 1)
        store.record("AGG", out, (via_c,), 1)
        store.record("R", Fact("ans", ("d", "b", 2)), (out, via_b), 1)
        tree = why(store, "ans", ("d", "b", 2))
        agg_child = next(c for c in tree.children if c.fact == out)
        assert agg_child.children[0].fact == via_b
        assert agg_child.alternatives == 2

"""Parser tests: surface syntax -> AST."""

import pytest

from repro.errors import NDlogSyntaxError
from repro.ndlog import parse, parse_rule
from repro.ndlog.ast import Assignment, Condition, Materialization
from repro.ndlog.terms import (
    AggregateSpec,
    BinOp,
    Constant,
    FuncCall,
    NIL,
    TupleTerm,
    Variable,
)


def test_parse_simple_rule():
    rule = parse_rule("p(@S, D) :- q(@S, D).")
    assert rule.head.pred == "p"
    assert rule.head.args == (Variable("S", location=True), Variable("D"))
    assert len(rule.body) == 1
    assert rule.body[0].pred == "q"


def test_location_marker_recorded():
    rule = parse_rule("p(@S) :- q(@S).")
    assert rule.head.args[0].location is True


def test_address_constant():
    program = parse("p(@n1, 5).")
    fact = program.facts[0]
    assert fact.args[0] == Constant("n1", location=True)
    assert fact.args[0].location is True


def test_link_literal_marker():
    rule = parse_rule("p(@S, D) :- #link(@S, D, C).")
    assert rule.body[0].link_literal is True
    assert rule.head.link_literal is False


def test_rule_label():
    rule = parse_rule("SP1: p(@S) :- q(@S).")
    assert rule.label == "SP1"


def test_query_statement():
    program = parse("Query: shortestPath(@S, @D, P, C).")
    assert program.query is not None
    assert program.query.pred == "shortestPath"
    assert program.rules == []


def test_fact_statement():
    program = parse("link(@a, @b, 5).")
    assert len(program.facts) == 1
    assert program.facts[0].args[2] == Constant(5)


def test_assignment_with_walrus_and_equals():
    rule = parse_rule("p(@S, C) :- q(@S, C1), C := C1 + 1.")
    assign = rule.body[1]
    assert isinstance(assign, Assignment)
    assert assign.var == Variable("C")
    assert isinstance(assign.expr, BinOp) and assign.expr.op == "+"

    rule2 = parse_rule("p(@S, C) :- q(@S, C1), C = C1 + 1.")
    assert isinstance(rule2.body[1], Assignment)


def test_equality_condition_is_not_assignment():
    rule = parse_rule("p(@S) :- q(@S, C), C == 5.")
    cond = rule.body[1]
    assert isinstance(cond, Condition)
    assert cond.expr.op == "=="


def test_function_call_term():
    rule = parse_rule(
        "p(@S, P) :- q(@S, P2), P := f_concatPath(link(@S, @S, 1), P2)."
    )
    expr = rule.body[1].expr
    assert isinstance(expr, FuncCall)
    assert expr.name == "f_concatPath"
    assert isinstance(expr.args[0], TupleTerm)
    assert expr.args[0].pred == "link"


def test_nil_parses_to_empty_tuple():
    rule = parse_rule("p(@S, P) :- q(@S), P := nil.")
    assert rule.body[1].expr == Constant(NIL)


def test_aggregate_in_head():
    rule = parse_rule("spCost(@S, @D, min<C>) :- path(@S, @D, C).")
    agg = rule.head.args[2]
    assert agg == AggregateSpec("min", "C")


def test_count_star_aggregate():
    rule = parse_rule("n(@S, count<*>) :- q(@S, X).")
    assert rule.head.args[1] == AggregateSpec("count", "")


def test_aggregate_in_body_is_rejected_by_parser_context():
    # Aggregates only parse in head positions; in a body they would be a
    # comparison expression, which here is a syntax error (dangling '>').
    with pytest.raises(NDlogSyntaxError):
        parse_rule("p(@S) :- q(@S, min<C>).")


def test_materialize_full_form():
    program = parse("materialize(link, infinity, infinity, keys(1, 2)).")
    mat = program.materializations["link"]
    assert mat == Materialization("link", float("inf"), float("inf"), (1, 2))
    assert mat.key_indexes() == (0, 1)


def test_materialize_with_lifetime():
    program = parse("materialize(cache, 120, 100, keys(1)).")
    mat = program.materializations["cache"]
    assert mat.lifetime == 120.0
    assert mat.max_size == 100.0


def test_materialize_short_form():
    program = parse("materialize(path, keys(1, 2, 3)).")
    assert program.materializations["path"].keys == (1, 2, 3)


def test_comparison_operators():
    for op in ("==", "!=", "<", "<=", ">", ">="):
        rule = parse_rule(f"p(@S) :- q(@S, C), C {op} 3.")
        assert rule.body[1].expr.op == op


def test_operator_precedence():
    rule = parse_rule("p(@S, C) :- q(@S, A, B), C := A + B * 2.")
    expr = rule.body[1].expr
    assert expr.op == "+"
    assert expr.right.op == "*"


def test_parenthesised_expression():
    rule = parse_rule("p(@S, C) :- q(@S, A, B), C := (A + B) * 2.")
    expr = rule.body[1].expr
    assert expr.op == "*"
    assert expr.left.op == "+"


def test_negative_number_unary():
    rule = parse_rule("p(@S, C) :- q(@S, A), C := -A.")
    assert rule.body[1].expr.op == "-"


def test_list_literal():
    program = parse("p(@a, [1, 2, 3]).")
    assert program.facts[0].args[1] == Constant((1, 2, 3))


def test_string_constant():
    program = parse('p(@a, "hello world").')
    assert program.facts[0].args[1] == Constant("hello world")


def test_missing_period_raises():
    with pytest.raises(NDlogSyntaxError):
        parse("p(@S) :- q(@S)")


def test_multiple_rules_and_labels():
    program = parse(
        """
        R1: p(@S, D) :- q(@S, D).
        R2: p(@S, D) :- q(@S, Z), p(@Z, D).
        Query: p(@S, D).
        """
    )
    assert [r.label for r in program.rules] == ["R1", "R2"]
    assert program.query.pred == "p"


def test_predicate_arity_map():
    program = parse("p(@S, D) :- q(@S, D).")
    assert program.predicates() == {"p": 2, "q": 2}


def test_idb_edb_split():
    program = parse("p(@S, D) :- q(@S, D).\nq(@a, b).")
    assert program.idb_predicates() == {"p"}
    assert "q" in program.edb_predicates()


def test_rename_predicates_suffix():
    program = parse("p(@S, D) :- q(@S, D).\nQuery: p(@S, D).")
    renamed = program.rename_predicates("_x")
    assert renamed.rules[0].head.pred == "p_x"
    assert renamed.rules[0].body[0].pred == "q_x"
    assert renamed.query.pred == "p_x"
    # original untouched
    assert program.rules[0].head.pred == "p"


def test_rename_predicates_mapping():
    program = parse("p(@S) :- q(@S).")
    renamed = program.rename_predicates({"q": "r"})
    assert renamed.rules[0].body[0].pred == "r"
    assert renamed.rules[0].head.pred == "p"


def test_negated_literal_parses():
    rule = parse_rule("p(@S) :- q(@S), !r(@S).")
    assert rule.body[1].negated is True


def test_parse_rule_rejects_multiple():
    with pytest.raises(NDlogSyntaxError):
        parse_rule("p(@S) :- q(@S). r(@S) :- q(@S).")

"""Unit tests for the transport layer's buffering modes (net-change
elimination and share grouping) against a stub cluster."""


from repro.net.message import NetDelta
from repro.net.sim import Simulator
from repro.net.stats import TrafficStats
from repro.runtime.config import RuntimeConfig, ShareSpec
from repro.runtime.transport import Transport


class StubCluster:
    """Just enough cluster for a Transport: a simulator, stats, a fake
    channel, and primary keys."""

    class _Channel:
        def __init__(self, log):
            self.log = log

        def transmit(self, sim, message, deliver, rng=None):
            self.log.append(message)
            return sim.now

    def __init__(self, pkeys=None):
        self.sim = self.clock = Simulator()
        self.stats = TrafficStats()
        self.sent = []
        self._channel = self._Channel(self.sent)
        self._pkeys = pkeys or {}
        self.loss_rng = None

    def channel(self, a, b):
        return self._channel

    def deliver(self, message):
        pass

    def pkey_of(self, pred, args):
        key = self._pkeys.get(pred)
        if not key:
            return args
        return tuple(args[i] for i in key)


def drain(cluster):
    cluster.sim.run()


class TestDirectMode:
    def test_one_message_per_send(self):
        cluster = StubCluster()
        transport = Transport(cluster, RuntimeConfig())
        transport.send("a", "b", "p", (1,), 1)
        transport.send("a", "b", "p", (2,), 1)
        assert len(cluster.sent) == 2
        assert cluster.stats.messages == 2


class TestNetChangeMode:
    def config(self):
        return RuntimeConfig(buffer_interval=0.1)

    def test_transient_insert_delete_suppressed(self):
        """A tuple inserted and retracted within one window never hits
        the wire (the periodic aggregate-selections saving)."""
        cluster = StubCluster(pkeys={"best": (0, 1)})
        transport = Transport(cluster, self.config())
        transport.send("a", "b", "best", ("a", "d", 5), 1)
        transport.send("a", "b", "best", ("a", "d", 5), -1)
        drain(cluster)
        assert cluster.sent == []

    def test_flip_flop_collapses_to_final(self):
        cluster = StubCluster(pkeys={"best": (0, 1)})
        transport = Transport(cluster, self.config())
        transport.send("a", "b", "best", ("a", "d", 5), 1)
        transport.send("a", "b", "best", ("a", "d", 5), -1)
        transport.send("a", "b", "best", ("a", "d", 3), 1)
        drain(cluster)
        (message,) = cluster.sent
        assert message.deltas == (NetDelta("best", ("a", "d", 3), 1),)

    def test_unchanged_readvertisement_suppressed(self):
        cluster = StubCluster(pkeys={"best": (0, 1)})
        transport = Transport(cluster, self.config())
        transport.send("a", "b", "best", ("a", "d", 5), 1)
        drain(cluster)
        transport.send("a", "b", "best", ("a", "d", 5), 1)
        drain(cluster)
        assert len(cluster.sent) == 1  # second window had no net change

    def test_deletion_of_advertised_tuple_sent(self):
        cluster = StubCluster(pkeys={"best": (0, 1)})
        transport = Transport(cluster, self.config())
        transport.send("a", "b", "best", ("a", "d", 5), 1)
        drain(cluster)
        transport.send("a", "b", "best", ("a", "d", 5), -1)
        drain(cluster)
        assert cluster.sent[1].deltas[0].sign == -1

    def test_replacement_retracts_what_receiver_has(self):
        """If cost 5 was advertised and the window ends at cost 3, the
        receiver's pkey replacement handles the swap: only +3 is sent."""
        cluster = StubCluster(pkeys={"best": (0, 1)})
        transport = Transport(cluster, self.config())
        transport.send("a", "b", "best", ("a", "d", 5), 1)
        drain(cluster)
        transport.send("a", "b", "best", ("a", "d", 5), -1)
        transport.send("a", "b", "best", ("a", "d", 3), 1)
        drain(cluster)
        assert cluster.sent[1].deltas == (
            NetDelta("best", ("a", "d", 3), 1),
        )


class TestShareMode:
    def config(self):
        return RuntimeConfig(
            share_delay=0.1,
            share_specs={
                "path_lat": ShareSpec(base="path", value_positions=(2,)),
                "path_rnd": ShareSpec(base="path", value_positions=(2,)),
            },
        )

    def test_matching_tuples_merge(self):
        cluster = StubCluster()
        transport = Transport(cluster, self.config())
        transport.send("a", "b", "path_lat", ("a", "d", 5), 1)
        transport.send("a", "b", "path_rnd", ("a", "d", 77), 1)
        drain(cluster)
        (message,) = cluster.sent
        assert len(message.deltas) == 2
        assert message.shared_bytes > 0
        solo = sum(d.payload_size() for d in message.deltas) + 20
        assert message.size < solo

    def test_non_matching_tuples_do_not_merge(self):
        cluster = StubCluster()
        transport = Transport(cluster, self.config())
        transport.send("a", "b", "path_lat", ("a", "d", 5), 1)
        transport.send("a", "b", "path_rnd", ("a", "ZZZ", 77), 1)
        drain(cluster)
        assert len(cluster.sent) == 2
        assert all(m.shared_bytes == 0 for m in cluster.sent)

    def test_unspecced_relations_pass_through(self):
        cluster = StubCluster()
        transport = Transport(cluster, self.config())
        transport.send("a", "b", "other", (1,), 1)
        drain(cluster)
        assert len(cluster.sent) == 1

"""Tests for the ndlint static-analysis suite (src/repro/analysis).

Covers: the five analyses on canonical programs, the three
seeded-negative fixtures, the golden snapshot per builtin program, the
compile(..., lint=) front-door wiring, the CLI, and a Hypothesis
property (the analyzer never crashes and always names real rules) that
reuses the random program generator from test_pretty.py.
"""

import pathlib

import pytest
from hypothesis import given, settings

from repro import api
from repro.analysis import ANALYSES, analyze
from repro.analysis.common import rule_name
from repro.errors import StaticAnalysisError
from repro.ndlog import programs
from repro.ndlog.parser import parse
from repro.ndlog.pretty import format_analysis_report
from test_pretty import random_programs

DATA = pathlib.Path(__file__).parent / "data" / "lint"

BUILDERS = [
    "shortest_path",
    "shortest_path_safe",
    "shortest_path_dynamic",
    "distance_vector",
    "magic_dst",
    "magic_src_dst",
    "multi_query_magic",
    "reachability",
    "transitive_closure",
    "transitive_closure_nonlinear",
    "same_generation",
]


def fixture(name):
    return (DATA / name).read_text()


# ----------------------------------------------------------------------
# Analysis 1: type inference
# ----------------------------------------------------------------------
class TestTypes:
    def test_shipped_programs_have_no_type_conflicts(self):
        for name in BUILDERS:
            report = analyze(getattr(programs, name)(), passes=["types"])
            assert not report.diagnostics, (name, report.diagnostics)

    def test_address_value_conflict_is_nd101_error(self):
        # Column 3 of q is an address in A1 (shipped to in A2's head
        # via unification with @X) but fed arithmetic in A2.
        report = analyze("""
            A1: q(@S, D) :- #link(@S, D, C).
            A2: r(@D, C) :- q(@D, X), C := X + 1, #link(@D, Z, C2).
        """, passes=["types"])
        errors = report.by_code("ND101")
        assert errors and errors[0].severity == "error"

    def test_value_type_conflict_is_nd102_warning(self):
        # Column 2 of t carries a number in B1 and a path in B2.
        report = analyze("""
            B1: t(@S, C) :- #link(@S, D, C), C := 1 + 2.
            B2: t(@S, P) :- #link(@S, D, C), P := f_concatPath(link(@S, D, C), nil).
        """, passes=["types"])
        warnings = report.by_code("ND102")
        assert warnings and warnings[0].severity == "warning"

    def test_summary_reports_column_types(self):
        report = analyze(programs.shortest_path(), passes=["types"])
        table = report.summaries["types"]["columns"]
        assert table["path"][0] == "address"
        assert "number" in table["path"][4]


# ----------------------------------------------------------------------
# Analysis 2: termination
# ----------------------------------------------------------------------
class TestTermination:
    def test_divergent_fixture_flagged(self):
        report = analyze(fixture("divergent_path_growth.ndlog"))
        hits = report.by_code("ND201")
        assert len(hits) == 1
        assert hits[0].severity == "warning"
        assert hits[0].analysis == "termination"
        assert hits[0].rule == "C2"
        assert hits[0].hint

    def test_raw_shortest_path_diverges(self):
        report = analyze(programs.shortest_path(), passes=["termination"])
        assert report.by_code("ND201")

    def test_cycle_guard_bounds_recursion(self):
        report = analyze(programs.shortest_path_safe(),
                         passes=["termination"])
        assert not report.by_code("ND201")
        assert "cycle guard" in report.by_code("ND202")[0].message

    def test_constant_comparison_bounds_recursion(self):
        report = analyze(programs.distance_vector(), passes=["termination"])
        assert not report.by_code("ND201")
        assert "C < 16" in report.by_code("ND202")[0].message

    def test_aggsel_view_bounds_recursion(self):
        compiled = api.compile(programs.shortest_path(), lint="off")
        report = analyze(compiled, passes=["termination"])
        assert not report.by_code("ND201")
        assert "pruned view" in report.by_code("ND202")[0].message

    def test_nonrecursive_growth_not_flagged(self):
        report = analyze("""
            N1: out(@S, C) :- #link(@S, D, C1), C := C1 + 1.
        """, passes=["termination"])
        assert not report.diagnostics


# ----------------------------------------------------------------------
# Analysis 3: monotonicity
# ----------------------------------------------------------------------
class TestMonotonicity:
    def test_aggregate_views_reported(self):
        report = analyze(programs.shortest_path(),
                         passes=["monotonicity"])
        stories = report.summaries["monotonicity"]["deletion_soundness"]
        assert stories["path"] == "psn-delete-rederive"
        assert "group" in stories["spCost"]
        assert report.by_code("ND302")

    def test_recursive_argmin_view_gets_nd301(self):
        compiled = api.compile(programs.shortest_path(), lint="off")
        report = analyze(compiled, passes=["monotonicity"])
        hits = report.by_code("ND301")
        assert hits and hits[0].severity == "info"
        assert "psn" in hits[0].message

    def test_monotone_program_clean(self):
        report = analyze(programs.reachability(), passes=["monotonicity"])
        assert not report.diagnostics
        strata = report.summaries["monotonicity"]["strata"]
        assert all(row["monotone"] for row in strata)


# ----------------------------------------------------------------------
# Analysis 4: communication
# ----------------------------------------------------------------------
class TestCommunication:
    def test_broadcast_storm_fixture_flagged(self):
        report = analyze(fixture("broadcast_storm.ndlog"))
        hits = report.by_code("ND402")
        assert len(hits) == 1
        assert hits[0].severity == "warning"
        assert hits[0].analysis == "communication"
        assert hits[0].rule == "G2"

    def test_shortest_path_ships_unicast(self):
        report = analyze(programs.shortest_path(),
                         passes=["communication"])
        profiles = report.summaries["communication"]["profiles"]
        classes = {p["rule"]: p["class"] for p in profiles}
        assert classes["SP2a"] == "unicast"
        assert classes["SP2b"] == "unicast"
        assert classes["SP1"] == "local"

    def test_unlinked_destination_is_nd401(self):
        # The head ships to an address drawn from a stored relation,
        # not a link endpoint -- link-restriction violation shape.
        report = analyze(parse("""
            W1: out(@T, X) :- store(@S, T, X), #link(@S, D, C).
        """), passes=["communication"])
        hits = report.by_code("ND401")
        assert hits and hits[0].severity == "warning"

    def test_datalog_program_skipped(self):
        report = analyze("""
            P1: tc(X, Y) :- edge(X, Y).
        """, passes=["communication"])
        assert not report.diagnostics
        assert report.summaries["communication"]["located"] is False


# ----------------------------------------------------------------------
# Analysis 5: dead code
# ----------------------------------------------------------------------
class TestDeadCode:
    def test_dead_rule_fixture_flagged(self):
        report = analyze(fixture("dead_rule.ndlog"))
        assert {d.pred for d in report.by_code("ND501")} == \
            {"phantom", "alarm"}
        assert {d.rule for d in report.by_code("ND502")} == {"D1", "D2"}
        assert all(d.severity == "warning"
                   for d in report.by_code("ND501") + report.by_code("ND502"))

    def test_statically_false_condition(self):
        report = analyze("""
            F1: out(@S, C) :- #link(@S, D, C), 1 > 2.
        """, passes=["deadcode"])
        assert report.by_code("ND503")

    def test_unused_relation_is_info(self):
        report = analyze("""
            U1: keep(@S, D) :- #link(@S, D, C).
            U2: drop(@S, D) :- #link(@S, D, C).
            Query: keep(@S, D).
        """, passes=["deadcode"])
        hits = report.by_code("ND504")
        assert hits and hits[0].severity == "info"
        assert hits[0].pred == "drop"

    def test_shipped_programs_fully_derivable(self):
        for name in BUILDERS:
            report = analyze(getattr(programs, name)(),
                             passes=["deadcode"])
            assert not report.summaries["deadcode"]["underivable"], name


# ----------------------------------------------------------------------
# Golden snapshots
# ----------------------------------------------------------------------
class TestSnapshots:
    @pytest.mark.parametrize("name", BUILDERS)
    def test_report_matches_snapshot(self, name):
        """Pinned ndlint output per builtin program; regenerate with
        tests/data/lint/regen_lint_snapshots.py when analyses change."""
        report = analyze(getattr(programs, name)(), name=name)
        golden = (DATA / "snapshots" / f"{name}.txt").read_text()
        assert format_analysis_report(report) == golden.rstrip("\n")


# ----------------------------------------------------------------------
# Front door: compile(..., lint=...)
# ----------------------------------------------------------------------
class TestCompileWiring:
    def test_default_warn_mode_attaches_lazy_report(self):
        compiled = api.compile(programs.shortest_path())
        assert compiled.lint == "warn"
        assert compiled._analysis_report is None  # not computed yet
        report = compiled.diagnostics
        assert report.ok  # aggsel bounded the recursion
        assert compiled.diagnostics is report  # cached

    def test_error_mode_raises_on_divergent_program(self):
        with pytest.raises(StaticAnalysisError) as excinfo:
            api.compile(fixture("divergent_path_growth.ndlog"),
                        lint="error")
        assert "ND201" in str(excinfo.value)
        assert excinfo.value.report.by_code("ND201")

    def test_error_mode_accepts_all_shipped_programs(self):
        for name in BUILDERS:
            compiled = api.compile(getattr(programs, name)(), lint="error")
            assert compiled.diagnostics.ok, name

    def test_off_mode_disables_analysis(self):
        compiled = api.compile(programs.shortest_path(), lint="off")
        assert compiled.diagnostics is None

    def test_unknown_mode_rejected(self):
        from repro.errors import PlanError

        with pytest.raises(PlanError):
            api.compile(programs.shortest_path(), lint="loud")

    def test_explain_renders_diagnostics_section(self):
        compiled = api.compile(programs.shortest_path())
        text = compiled.explain(join_plans=False)
        assert "-- diagnostics --" in text
        assert "ND202" in text

    def test_recompile_flips_lint_without_mutating(self):
        compiled = api.compile(programs.shortest_path())
        derived = api.compile(compiled, lint="off")
        assert derived.lint == "off"
        assert compiled.lint == "warn"

    def test_extended_carries_lint_mode(self):
        compiled = api.compile(programs.shortest_path(), lint="off")
        assert compiled.extended(["localize"]).lint == "off"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_exit_codes(self, capsys):
        from repro.lint import main

        assert main(["shortest_path"]) == 0
        assert main([str(DATA / "divergent_path_growth.ndlog")]) == 1
        capsys.readouterr()

    def test_all_builtin_programs_pass(self, capsys):
        from repro.lint import main

        assert main(["--all", "--examples-dir",
                     "does-not-exist"]) == 0
        out = capsys.readouterr().out
        assert "shortest_path" in out

    def test_pass_subset_and_severity_filter(self, capsys):
        from repro.lint import main

        code = main(["shortest_path", "--raw",
                     "--passes", "termination",
                     "--severity", "warning"])
        out = capsys.readouterr().out
        assert code == 1  # raw shortest_path diverges without aggsel
        assert "ND201" in out
        assert "ND302" not in out  # monotonicity did not run

    def test_unknown_target_exits(self):
        from repro.lint import main

        with pytest.raises(SystemExit):
            main(["no_such_program"])


# ----------------------------------------------------------------------
# Robustness: the analyzer never crashes
# ----------------------------------------------------------------------
@given(program=random_programs())
@settings(deadline=None, max_examples=150)
def test_analyzer_never_crashes_and_names_real_rules(program):
    report = analyze(program)
    # ND001 is the internal-crash escape hatch; a well-behaved analyzer
    # never emits it, whatever the program shape.
    assert not report.by_code("ND001"), report.by_code("ND001")
    assert list(report.analyses) == list(ANALYSES)
    valid_rules = {""} | {rule_name(r) for r in program.rules}
    for diag in report:
        assert diag.rule in valid_rules
        assert diag.severity in ("info", "warning", "error")
        assert diag.code.startswith("ND")
        assert diag.message

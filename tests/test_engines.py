"""Cross-engine correctness: naive, semi-naive (Algorithm 1), BSN, and
PSN (Algorithm 3) must compute identical fixpoints (Theorem 1), and the
delta-based engines must not repeat inferences (Theorem 2)."""

import random

import pytest

from repro.engine import Database, bsn, naive, psn, seminaive
from repro.engine.bsn import BSNEngine
from repro.engine.psn import PSNEngine
from repro.errors import EvaluationError, PlanError
from repro.ndlog import parse
from repro.ndlog.programs import (
    shortest_path,
    shortest_path_safe,
    transitive_closure,
    transitive_closure_nonlinear,
)

ENGINES = (naive, seminaive, bsn, psn)

#: Figure 2's example network (bidirectional).
FIGURE2_LINKS = [
    ("a", "b", 5), ("b", "a", 5),
    ("a", "c", 1), ("c", "a", 1),
    ("c", "b", 1), ("b", "c", 1),
    ("b", "d", 1), ("d", "b", 1),
    ("e", "a", 1), ("a", "e", 1),
]


def run(module, program, loads):
    db = Database.for_program(program)
    for pred, rows in loads.items():
        db.load_facts(pred, rows)
    return module.evaluate(program, db)


@pytest.mark.parametrize("module", ENGINES)
def test_shortest_path_on_figure2(module):
    result = run(module, shortest_path_safe(), {"link": FIGURE2_LINKS})
    sp = result.rows("shortestPath")
    # From Section 2.2: node a's shortest path to b improves from
    # [a,b] cost 5 to [a,c,b] cost 2.
    assert ("a", "b", ("a", "c", "b"), 2) in sp
    # Path-vector examples from Figure 2.
    assert ("e", "b", ("e", "a", "c", "b"), 3) in sp
    assert ("c", "d", ("c", "b", "d"), 2) in sp
    # All 5*4 ordered pairs are connected.
    assert len({(s, d) for s, d, _p, _c in sp}) == 20


@pytest.mark.parametrize("module", ENGINES)
def test_transitive_closure_matches_reference(module):
    random.seed(11)
    edges = {(f"n{random.randrange(9)}", f"n{random.randrange(9)}")
             for _ in range(16)}
    edges = {(a, b) for a, b in edges if a != b}
    result = run(module, transitive_closure(), {"edge": edges})

    # Reference closure via simple BFS.
    adjacency = {}
    for a, b in edges:
        adjacency.setdefault(a, set()).add(b)
    expected = set()
    for start in {a for a, _ in edges}:
        frontier = [start]
        seen = set()
        while frontier:
            node = frontier.pop()
            for nxt in adjacency.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        expected |= {(start, node) for node in seen}
    assert result.rows("tc") == frozenset(expected)


def test_all_engines_agree_on_random_graphs():
    random.seed(3)
    for _trial in range(8):
        edges = {(f"n{random.randrange(7)}", f"n{random.randrange(7)}")
                 for _ in range(12)}
        baselines = {}
        for builder in (transitive_closure, transitive_closure_nonlinear):
            outputs = set()
            for module in ENGINES:
                result = run(module, builder(), {"edge": edges})
                outputs.add(result.rows("tc"))
            assert len(outputs) == 1
            baselines[builder.__name__] = outputs.pop()
        # Linear and non-linear TC agree with each other too.
        assert (baselines["transitive_closure"]
                == baselines["transitive_closure_nonlinear"])


def test_theorem2_no_repeated_inferences():
    """SN is inference-optimal; PSN and BSN must match it exactly
    (Theorem 2), including on non-linear rules (self-joins)."""
    random.seed(5)
    for _trial in range(6):
        edges = {(f"n{random.randrange(8)}", f"n{random.randrange(8)}")
                 for _ in range(14)}
        for builder in (transitive_closure, transitive_closure_nonlinear):
            counts = {}
            for module in (seminaive, bsn, psn):
                result = run(module, builder(), {"edge": edges})
                counts[module.__name__] = result.inferences
            assert len(set(counts.values())) == 1, counts


def test_naive_does_repeat_inferences():
    """Sanity check on the baseline: naive evaluation re-derives facts
    every iteration, so its inference count exceeds semi-naive's."""
    edges = [(f"n{i}", f"n{i+1}") for i in range(6)]
    naive_result = run(naive, transitive_closure(), {"edge": edges})
    sn_result = run(seminaive, transitive_closure(), {"edge": edges})
    assert naive_result.inferences > sn_result.inferences
    assert naive_result.rows("tc") == sn_result.rows("tc")


def test_figure1_program_diverges_on_cycles_without_pruning():
    """Section 2: 'In the presence of path cycles, the query never
    terminates' -- the literal Figure 1 program must hit the iteration
    guard on a cyclic graph when no aggregate-selection pruning is on."""
    program = shortest_path()
    db = Database.for_program(program)
    db.load_facts("link", [("a", "b", 1), ("b", "a", 1)])
    with pytest.raises(EvaluationError):
        seminaive.evaluate(program, db, max_iterations=50)


def test_safe_program_terminates_on_cycles():
    result = run(seminaive, shortest_path_safe(),
                 {"link": [("a", "b", 1), ("b", "a", 1)]})
    assert ("a", "b", ("a", "b"), 1) in result.rows("shortestPath")


def test_bsn_random_batching_matches_fixpoint():
    """BSN may buffer arbitrarily (Section 3.3.1): any batching schedule
    must reach the same fixpoint."""
    random.seed(9)
    edges = {(f"n{random.randrange(8)}", f"n{random.randrange(8)}")
             for _ in range(14)}
    reference = run(seminaive, transitive_closure(), {"edge": edges})

    rng = random.Random(1234)
    for _trial in range(5):
        program = transitive_closure()
        db = Database.for_program(program)
        db.load_facts("edge", edges)
        engine = BSNEngine(program, db=db,
                           scheduler=lambda n: rng.randint(1, max(1, n)))
        result = engine.fixpoint()
        assert result.rows("tc") == reference.rows("tc")


def test_psn_incremental_insert_equals_batch():
    """PSN processes tuples as they arrive: inserting base facts one at a
    time (running to quiescence in between) must equal batch loading."""
    edges = [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a"), ("b", "d")]
    program = transitive_closure()
    engine = PSNEngine(program)
    for edge in edges:
        engine.insert("edge", edge)
        engine.run()
    batch = run(psn, transitive_closure(), {"edge": edges})
    assert frozenset(engine.db.table("tc").rows()) == batch.rows("tc")


def test_psn_max_steps_limit_is_exact():
    """Regression: the step guard used to fire only after processing
    ``max_steps + 1`` deltas.  Exactly ``max_steps`` deltas may be
    processed; one more must raise."""
    edges = [(f"n{i}", f"n{i+1}") for i in range(4)]
    program = transitive_closure()
    engine = PSNEngine(program)
    for edge in edges:
        engine.insert("edge", edge)
    needed = engine.run()  # drains fine with the default generous limit

    engine = PSNEngine(program)
    for edge in edges:
        engine.insert("edge", edge)
    assert engine.run(max_steps=needed) == needed  # exact budget passes

    engine = PSNEngine(program)
    for edge in edges:
        engine.insert("edge", edge)
    with pytest.raises(EvaluationError):
        engine.run(max_steps=needed - 1)


def test_bsn_max_steps_limit_is_exact():
    """BSN clips batches so at most ``max_steps`` deltas are processed."""
    edges = [(f"n{i}", f"n{i+1}") for i in range(4)]
    program = transitive_closure()
    engine = BSNEngine(program)
    for edge in edges:
        engine.insert("edge", edge)
    needed = engine.run()

    engine = BSNEngine(program)
    for edge in edges:
        engine.insert("edge", edge)
    assert engine.run(max_steps=needed) == needed

    engine = BSNEngine(program)
    for edge in edges:
        engine.insert("edge", edge)
    with pytest.raises(EvaluationError):
        engine.run(max_steps=needed - 1)
    assert engine.steps == needed - 1  # nothing beyond the budget ran


def test_recursive_aggregate_rejected_by_set_engines():
    program = parse(
        """
        R1: best(@S, min<C>) :- e(@S, C).
        R2: e(@S, C) :- best(@S, C1), C := C1 + 1.
        """
    )
    with pytest.raises(PlanError) as excinfo:
        seminaive.evaluate(program, Database.for_program(program))
    # The message must name the engines that *can* run the plan.
    assert "psn" in str(excinfo.value) and "bsn" in str(excinfo.value)


def test_iteration_counts_reported():
    edges = [(f"n{i}", f"n{i+1}") for i in range(5)]
    result = run(seminaive, transitive_closure(), {"edge": edges})
    # Longest chain has 5 hops -> about that many delta iterations.
    assert result.iterations >= 4


def test_facts_in_program_text_are_loaded():
    program = parse(
        """
        edge(a, b).
        edge(b, c).
        T1: tc(X, Y) :- edge(X, Y).
        T2: tc(X, Z) :- edge(X, Y), tc(Y, Z).
        """
    )
    for module in ENGINES:
        result = module.evaluate(program, Database.for_program(program))
        assert result.rows("tc") == frozenset(
            {("a", "b"), ("b", "c"), ("a", "c")}
        )

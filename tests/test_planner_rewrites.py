"""Planner rewrites: aggregate selections, predicate reordering, and the
textual semi-naive delta rewrite."""

import pytest

from repro.engine import Database, psn, seminaive
from repro.errors import PlanError
from repro.ndlog import parse, parse_rule
from repro.ndlog.programs import (
    multi_query_magic,
    shortest_path,
    shortest_path_safe,
)
from repro.opt import aggsel
from repro.planner.reorder import (
    reorder_body,
    reorder_program,
    swap_recursive_to_left,
    swap_recursive_to_right,
)
from repro.planner.seminaive_rewrite import delta_rules_for, seminaive_rewrite

FIGURE2_LINKS = [
    ("a", "b", 5), ("b", "a", 5),
    ("a", "c", 1), ("c", "a", 1),
    ("c", "b", 1), ("b", "c", 1),
    ("b", "d", 1), ("d", "b", 1),
    ("e", "a", 1), ("a", "e", 1),
]


class TestAggregateSelections:
    def test_detects_spcost_over_path(self):
        specs = aggsel.detect(shortest_path())
        assert len(specs) == 1
        spec = specs[0]
        assert spec.pred == "path"
        assert spec.func == "min"
        # Group = (location, destination); value = the cost field.
        assert spec.group_positions == (0, 1)
        assert spec.value_position == 4

    def test_detects_pathq_group_with_location_first(self):
        """For the multi-query program the group must be (location,
        query-id) even though MQ3 only aggregates at the destination --
        first-occurrence mapping puts the tuple's own location in the
        group, enabling per-node pruning."""
        specs = aggsel.detect(multi_query_magic())
        by_pred = {s.pred: s for s in specs}
        assert "pathQ" in by_pred
        assert by_pred["pathQ"].group_positions == (0, 1)

    def test_rewrite_redirects_recursion_only(self):
        rewritten = aggsel.rewrite(shortest_path())
        by_label = {r.label: r for r in rewritten.rules}
        # SP2 (defines path) now reads the pruned view...
        assert any(lit.pred == "path__best"
                   for lit in by_label["SP2"].body_literals)
        # ...but SP3/SP4 still read the raw relation.
        assert all(lit.pred != "path__best"
                   for lit in by_label["SP3"].body_literals)
        assert all(lit.pred != "path__best"
                   for lit in by_label["SP4"].body_literals)

    def test_best_view_is_keyed_on_group(self):
        rewritten = aggsel.rewrite(shortest_path())
        mat = rewritten.materializations["path__best"]
        assert mat.key_indexes() == (0, 1)

    def test_terminates_on_cycles_and_costs_match(self):
        """Section 5.1.1: aggregate selections make the Figure 1 program
        terminate even with cyclic paths."""
        rewritten = aggsel.rewrite(shortest_path())
        db = Database.for_program(rewritten)
        db.load_facts("link", FIGURE2_LINKS)
        result = psn.evaluate(rewritten, db)
        got = {(s, d): c for s, d, _p, c in result.rows("shortestPath")
               if s != d}

        reference = shortest_path_safe()
        db2 = Database.for_program(reference)
        db2.load_facts("link", FIGURE2_LINKS)
        ref = psn.evaluate(reference, db2)
        want = {(s, d): c for s, d, _p, c in ref.rows("shortestPath")}
        assert got == want

    def test_rewrite_reduces_derivations(self):
        """The pruned program does far less work than the guarded
        original on a denser graph, where the full program enumerates
        every simple path."""
        import random

        rng = random.Random(6)
        names = [f"v{i}" for i in range(10)]
        pairs = {(names[i], names[(i + 1) % 10]) for i in range(10)}
        while len(pairs) < 16:
            pairs.add(tuple(rng.sample(names, 2)))
        links = []
        for a, b in sorted(pairs):
            cost = rng.randint(1, 9)
            links += [(a, b, cost), (b, a, cost)]

        rewritten = aggsel.rewrite(shortest_path())
        db = Database.for_program(rewritten)
        db.load_facts("link", links)
        pruned = psn.evaluate(rewritten, db)

        reference = shortest_path_safe()
        db2 = Database.for_program(reference)
        db2.load_facts("link", links)
        full = psn.evaluate(reference, db2)
        assert pruned.inferences < full.inferences / 2
        assert len(pruned.db.table("path").rows()) < len(
            full.db.table("path").rows()
        ) / 2

    def test_unknown_relation_rejected(self):
        from repro.opt.aggsel import PruneSpec

        with pytest.raises(PlanError):
            aggsel.rewrite(
                shortest_path(),
                [PruneSpec("nosuch", "min", (0,), 1)],
            )


class TestPredicateReordering:
    def test_sp2_right_to_left(self):
        """Section 5.1.2: swapping #link and path turns SP2 from
        right-recursive into left-recursive."""
        rule = parse_rule(
            "SP2: path(@S, @D, @Z, P, C) :- #link(@S, @Z, C1), "
            "path(@Z, @D, @Z2, P2, C2), C := C1 + C2, "
            "P := f_concatPath(link(@S, @Z, C1), P2)."
        )
        swapped = swap_recursive_to_left(rule, "path")
        assert swapped.body_literals[0].pred == "path"
        assert swapped.body_literals[1].pred == "link"
        # Assignments re-placed after their inputs are bound.
        back = swap_recursive_to_right(swapped, "path")
        assert back.body_literals[0].pred == "link"

    def test_reordering_preserves_semantics(self):
        program = shortest_path_safe()
        left = reorder_program(program, "path", to_left=True)
        db1 = Database.for_program(program)
        db1.load_facts("link", FIGURE2_LINKS)
        db2 = Database.for_program(left)
        db2.load_facts("link", FIGURE2_LINKS)
        r1 = seminaive.evaluate(program, db1)
        r2 = seminaive.evaluate(left, db2)
        assert r1.rows("shortestPath") == r2.rows("shortestPath")

    def test_bad_order_rejected(self):
        rule = parse_rule("p(@S) :- q(@S), r(@S).")
        with pytest.raises(PlanError):
            reorder_body(rule, [0, 0])

    def test_no_recursive_literal_is_noop(self):
        rule = parse_rule("p(@S) :- q(@S), r(@S).")
        assert swap_recursive_to_left(rule, "p") == rule


class TestSemiNaiveRewrite:
    def test_sp2_produces_paper_delta_rule(self):
        """The rewrite of SP2 is the paper's SP2-1."""
        rule = parse_rule(
            "SP2: path(@S, @D, @Z, P, C) :- #link(@S, @Z, C1), "
            "path(@Z, @D, @Z2, P2, C2), C := C1 + C2, "
            "P := f_concatPath(link(@S, @Z, C1), P2)."
        )
        (delta,) = delta_rules_for(rule, {"path"})
        assert delta.label == "SP2-1"
        assert delta.head.pred == "delta_new_path"
        preds = [lit.pred for lit in delta.body_literals]
        assert preds == ["link", "delta_old_path"]

    def test_nonlinear_rule_gets_one_strand_per_occurrence(self):
        rule = parse_rule("T2: tc(X, Z) :- tc(X, Y), tc(Y, Z).")
        deltas = delta_rules_for(rule, {"tc"})
        assert len(deltas) == 2
        first, second = deltas
        # Footnote 2's form: old before the delta, full after.
        assert [l.pred for l in first.body_literals] == [
            "delta_old_tc", "tc"
        ]
        assert [l.pred for l in second.body_literals] == [
            "old_tc", "delta_old_tc"
        ]

    def test_base_rule_unchanged(self):
        rule = parse_rule("T1: tc(X, Y) :- edge(X, Y).")
        assert delta_rules_for(rule, {"tc"}) == [rule]

    def test_program_rewrite_counts(self):
        program = parse(
            """
            T1: tc(X, Y) :- edge(X, Y).
            T2: tc(X, Z) :- tc(X, Y), tc(Y, Z).
            """
        )
        rewritten = seminaive_rewrite(program)
        assert len(rewritten.rules) == 3  # T1 + two delta strands

"""Property tests for :mod:`repro.ndlog.pretty`.

The pretty-printer is the one serialization boundary the whole system
leans on -- pass snapshots, explain() output, and now provenance
rendering all go through it.  Beyond the canonical-program round-trip
in ``test_properties.py``, this file generates *random* programs from
the full surface grammar (hypothesis) and checks

    ``parse(format_program(p))`` is AST-equal to ``p``

plus print idempotence, and unit-tests the provenance renderers
(``format_fact`` / ``format_derivation`` / ``format_why_not``).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.facts import Fact
from repro.ndlog import pretty
from repro.ndlog.ast import (
    Assignment,
    Condition,
    INFINITY,
    Literal,
    Materialization,
    Program,
    Rule,
)
from repro.ndlog.parser import parse
from repro.ndlog.terms import (
    AggregateSpec,
    BinOp,
    Constant,
    FuncCall,
    NIL,
    Variable,
)
from repro.provenance import DerivationTree

# ----------------------------------------------------------------------
# Strategies over the surface grammar
# ----------------------------------------------------------------------
PRED_NAMES = st.sampled_from(
    ["path", "link", "route", "reach", "cost", "best", "tc", "edge", "q"]
)
VAR_NAMES = st.sampled_from(["S", "D", "Z", "P", "C", "X", "Y", "C1", "P2"])
FUNC_NAMES = st.sampled_from(["f_concatPath", "f_member", "f_size"])
LOCATION_NODES = st.sampled_from(["a", "b", "node1"])

ground_values = st.one_of(
    st.integers(min_value=0, max_value=10_000),
    st.booleans(),
    st.sampled_from(["alpha", "n17", "some text", 'quo"te', "back\\slash",
                     2.5, 0.125, NIL]),
    st.tuples(st.integers(min_value=0, max_value=9),
              st.sampled_from(["a", "b"])),
)

variables = st.builds(Variable, VAR_NAMES)
location_terms = st.one_of(
    st.builds(lambda n: Variable(n, location=True), VAR_NAMES),
    st.builds(lambda n: Constant(n, location=True), LOCATION_NODES),
)
constants = st.builds(Constant, ground_values)

base_terms = st.one_of(variables, constants)
arith_ops = st.sampled_from(["+", "-", "*"])
compare_ops = st.sampled_from(["==", "!=", "<", "<=", ">", ">="])

expressions = st.recursive(
    base_terms,
    lambda children: st.one_of(
        st.builds(BinOp, arith_ops, children, children),
        st.builds(
            FuncCall, FUNC_NAMES,
            st.lists(children, min_size=1, max_size=2).map(tuple),
        ),
    ),
    max_leaves=4,
)

plain_args = st.lists(
    st.one_of(variables, constants, expressions), min_size=0, max_size=3
)


@st.composite
def literals(draw, link_ok=True):
    pred = draw(PRED_NAMES)
    args = [draw(location_terms)] + draw(plain_args)
    link = draw(st.booleans()) if link_ok else False
    return Literal(pred, tuple(args), link_literal=link)


@st.composite
def head_literals(draw):
    head = draw(literals(link_ok=False))
    if len(head.args) >= 2 and draw(st.booleans()):
        spec = draw(st.one_of(
            st.builds(AggregateSpec,
                      st.sampled_from(["min", "max", "count", "sum"]),
                      VAR_NAMES),
            st.just(AggregateSpec("count", "")),  # count<*> parses var=""
        ))
        args = list(head.args)
        args[-1] = spec
        head = Literal(head.pred, tuple(args))
    return head


assignments = st.builds(
    Assignment, st.builds(Variable, VAR_NAMES), expressions
)
conditions = st.builds(
    Condition, st.builds(BinOp, compare_ops, expressions, expressions)
)

body_items = st.one_of(literals(), assignments, conditions)


@st.composite
def rules(draw, index=0):
    head = draw(head_literals())
    body = draw(st.lists(body_items, min_size=1, max_size=4))
    label = draw(st.sampled_from(["", f"R{index}", "SP1", "myRule"]))
    return Rule(head=head, body=tuple(body), label=label)


@st.composite
def ground_literals(draw):
    pred = draw(PRED_NAMES)
    loc = Constant(draw(LOCATION_NODES), location=True)
    rest = draw(st.lists(st.builds(Constant, ground_values),
                         min_size=0, max_size=3))
    return Literal(pred, tuple([loc] + rest))


@st.composite
def materializations(draw):
    pred = draw(PRED_NAMES)
    # The parser reads materialize numbers as floats.
    lifetime = draw(st.sampled_from([INFINITY, 10.0, 120.5]))
    size = draw(st.sampled_from([INFINITY, 1000.0]))
    keys = tuple(draw(st.lists(
        st.integers(min_value=1, max_value=4),
        min_size=1, max_size=3, unique=True,
    )))
    return Materialization(pred=pred, lifetime=lifetime, max_size=size,
                           keys=keys)


@st.composite
def random_programs(draw):
    rule_list = [draw(rules(index=i))
                 for i in range(draw(st.integers(1, 4)))]
    fact_list = draw(st.lists(ground_literals(), max_size=2))
    mats = {m.pred: m for m in draw(st.lists(materializations(), max_size=2))}
    query = draw(st.none() | literals(link_ok=False))
    return Program(rules=rule_list, facts=fact_list,
                   materializations=mats, query=query)


# ----------------------------------------------------------------------
# The round-trip property
# ----------------------------------------------------------------------
@given(program=random_programs())
@settings(deadline=None, max_examples=200)
def test_format_program_reparses_to_equal_ast(program):
    text = pretty.format_program(program)
    again = parse(text)
    assert again.rules == program.rules
    assert again.facts == program.facts
    assert again.materializations == program.materializations
    assert again.query == program.query
    # Idempotence: printing the re-parse reproduces the text.
    assert pretty.format_program(again) == text


@given(term=expressions)
@settings(deadline=None, max_examples=200)
def test_format_term_reparses_inside_a_rule(term):
    rule = Rule(
        head=Literal("p", (Variable("S", location=True),)),
        body=(
            Literal("q", (Variable("S", location=True),)),
            Assignment(Variable("V"), term),
        ),
    )
    program = Program(rules=[rule])
    again = parse(pretty.format_program(program))
    assert again.rules == program.rules


# ----------------------------------------------------------------------
# Provenance renderers
# ----------------------------------------------------------------------
class TestProvenanceRendering:
    def test_format_fact_handles_source_and_runtime_values(self):
        assert pretty.format_fact(Fact("link", ("a", "b", 1))) == \
            "link(a, b, 1)"
        assert pretty.format_fact(Fact("p", (("a", "b"), True))) == \
            "p([a, b], true)"

    def test_format_derivation_tree(self):
        leaf = DerivationTree(Fact("link", ("a", "b", 1)))
        tree = DerivationTree(
            Fact("path", ("a", "b", ("a", "b"), 1)),
            rule="SP1", node="a", children=(leaf,),
        )
        text = pretty.format_derivation(tree)
        lines = text.splitlines()
        assert lines[0].startswith("path(")
        assert "<- SP1 @ a" in lines[0]
        assert lines[1].strip().endswith("(base)")

    def test_format_derivation_truncation_and_none(self):
        cut = DerivationTree(Fact("tc", ("a", "a")), truncated=True)
        assert "truncated" in pretty.format_derivation(cut)
        assert "no derivation" in pretty.format_derivation(None)

    def test_format_why_not_handles_runtime_values(self):
        from repro.ndlog.terms import ConstructedTuple
        from repro.provenance import WhyNotReport

        report = WhyNotReport(
            pred="q",
            args=("a", ConstructedTuple("link", ("a", "b")), None),
            present=False, is_base=True,
        )
        text = pretty.format_why_not(report)
        assert "never inserted" in text and "link" in text

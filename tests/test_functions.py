"""Builtin ``f_*`` function tests, including the three f_concatPath usages
from the paper's rules SP1, SP2 and SP2-SD."""

import pytest

from repro.errors import EvaluationError
from repro.ndlog.functions import REGISTRY, default_functions, node_sequence
from repro.ndlog.terms import ConstructedTuple

F = REGISTRY


def link(s, d, c=1):
    return ConstructedTuple("link", (s, d, c))


class TestConcatPath:
    def test_sp1_link_with_nil(self):
        # P = f_concatPath(link(@S,@D,C), nil)  ->  [S, D]
        assert F["f_concatPath"](link("a", "b"), ()) == ("a", "b")

    def test_sp2_link_prepended_to_path(self):
        # P = f_concatPath(link(@S,@Z,C1), P2) with P2 starting at Z.
        assert F["f_concatPath"](link("a", "b"), ("b", "d")) == ("a", "b", "d")

    def test_sp2sd_path_extended_by_link(self):
        # P = f_concatPath(P1, link(@Z,@D,C2)) with P1 ending at Z.
        assert F["f_concatPath"](("s", "z"), link("z", "d")) == ("s", "z", "d")

    def test_no_shared_junction_plain_concat(self):
        assert F["f_concatPath"](("a", "b"), ("c", "d")) == ("a", "b", "c", "d")

    def test_two_links(self):
        assert F["f_concatPath"](link("a", "b"), link("b", "c")) == ("a", "b", "c")

    def test_scalar_items(self):
        assert F["f_concatPath"]("a", ("a", "b")) == ("a", "b")

    def test_link_needs_two_fields(self):
        with pytest.raises(EvaluationError):
            F["f_concatPath"](ConstructedTuple("x", ("a",)), ())


class TestListBuiltins:
    def test_member(self):
        assert F["f_member"](("a", "b"), "a") == 1
        assert F["f_member"](("a", "b"), "z") == 0

    def test_member_requires_list(self):
        with pytest.raises(EvaluationError):
            F["f_member"]("ab", "a")

    def test_size(self):
        assert F["f_size"](()) == 0
        assert F["f_size"](("a", "b", "c")) == 3

    def test_first_last(self):
        assert F["f_first"](("a", "b")) == "a"
        assert F["f_last"](("a", "b")) == "b"

    def test_first_of_empty_raises(self):
        with pytest.raises(EvaluationError):
            F["f_first"](())

    def test_init_append_prepend(self):
        assert F["f_init"]("a") == ("a",)
        assert F["f_append"](("a",), "b") == ("a", "b")
        assert F["f_prepend"]("a", ("b",)) == ("a", "b")

    def test_reverse(self):
        assert F["f_reverse"](("a", "b", "c")) == ("c", "b", "a")

    def test_prevhop(self):
        # Reverse-path routing of answer tuples (Section 5.2).
        assert F["f_prevhop"](("a", "b", "c"), "c") == "b"
        assert F["f_prevhop"](("a", "b", "c"), "a") == "a"

    def test_prevhop_off_path_raises(self):
        with pytest.raises(EvaluationError):
            F["f_prevhop"](("a", "b"), "z")

    def test_subpath(self):
        # "the subpaths of shortest paths are optimal" -- cached values.
        assert F["f_subpath"](("a", "b", "c"), "b") == ("b", "c")
        assert F["f_subpath"](("a", "b", "c"), "a") == ("a", "b", "c")

    def test_min_max(self):
        assert F["f_min"](3, 5) == 3
        assert F["f_max"](3, 5) == 5


class TestRegistry:
    def test_default_functions_is_copy(self):
        funcs = default_functions()
        funcs["f_bogus"] = lambda: None
        assert "f_bogus" not in REGISTRY

    def test_register_requires_f_prefix(self):
        from repro.errors import SchemaError
        from repro.ndlog.functions import register

        with pytest.raises(SchemaError):
            register("not_prefixed")

    def test_node_sequence_forms(self):
        assert node_sequence(("a", "b")) == ("a", "b")
        assert node_sequence(link("a", "b")) == ("a", "b")
        assert node_sequence("a") == ("a",)

"""Magic-sets rewriting tests (Section 5.1.2)."""

import random

import pytest

from repro.engine import Database, psn, seminaive
from repro.errors import PlanError
from repro.ndlog import make_literal, parse
from repro.ndlog.ast import Literal
from repro.ndlog.programs import same_generation, transitive_closure
from repro.ndlog.terms import Constant, Variable
from repro.planner.magic import adornment_of, magic_rewrite


def bound_query(pred, *args):
    return make_literal(pred, *args)


def run_program(program, loads, query_pred):
    db = Database.for_program(program)
    for pred, rows in loads.items():
        db.load_facts(pred, rows)
    return seminaive.evaluate(program, db).rows(query_pred)


def test_adornment_patterns():
    lit = Literal("p", (Constant("a"), Variable("X"), Variable("Y")))
    assert adornment_of(lit, set()) == "bff"
    assert adornment_of(lit, {"X"}) == "bbf"


def test_tc_bound_source():
    """tc(a, Y)?: only facts reachable from 'a' should be computed."""
    edges = [("a", "b"), ("b", "c"), ("x", "y"), ("y", "z")]
    program = transitive_closure()
    query = bound_query("tc", "a", "Y")
    rewritten = magic_rewrite(program, query)

    full = run_program(program, {"edge": edges}, "tc")
    magic = run_program(rewritten, {"edge": edges}, "tc")

    expected = {t for t in full if t[0] == "a"}
    assert magic == frozenset(expected)


def test_tc_magic_avoids_irrelevant_work():
    """The whole point: the rewritten program derives fewer tuples."""
    random.seed(4)
    edges = [(f"n{random.randrange(20)}", f"n{random.randrange(20)}")
             for _ in range(40)]
    program = transitive_closure()
    query = bound_query("tc", "n0", "Y")
    rewritten = magic_rewrite(program, query)

    db_full = Database.for_program(program)
    db_full.load_facts("edge", edges)
    full = seminaive.evaluate(program, db_full)

    db_magic = Database.for_program(rewritten)
    db_magic.load_facts("edge", edges)
    magic = seminaive.evaluate(rewritten, db_magic)

    assert magic.inferences <= full.inferences
    expected = {t for t in full.rows("tc") if t[0] == "n0"}
    assert magic.rows("tc") == frozenset(expected)


def test_same_generation_bound_first():
    """The classic magic-sets example program."""
    parents = [("b1", "p1"), ("b2", "p1"), ("c1", "b1"), ("c2", "b2"),
               ("d1", "c1"), ("other", "elsewhere")]
    people = [(x,) for x in
              {a for a, b in parents} | {b for a, b in parents}]
    program = same_generation()
    query = bound_query("sg", "c1", "Y")
    rewritten = magic_rewrite(program, query)

    loads = {"parent": parents, "person": people}
    full = run_program(program, loads, "sg")
    magic = run_program(rewritten, loads, "sg")
    expected = {t for t in full if t[0] == "c1"}
    assert magic == frozenset(expected)
    assert ("c1", "c2") in magic  # same generation via p1


def test_fully_free_query_returns_original():
    program = transitive_closure()
    query = Literal("tc", (Variable("X"), Variable("Y")))
    assert magic_rewrite(program, query) is program


def test_query_must_be_idb():
    program = transitive_closure()
    with pytest.raises(PlanError):
        magic_rewrite(program, bound_query("edge", "a", "Y"))


def test_both_bound_query():
    edges = [("a", "b"), ("b", "c"), ("c", "d")]
    program = transitive_closure()
    query = bound_query("tc", "a", "d")
    rewritten = magic_rewrite(program, query)
    magic = run_program(rewritten, {"edge": edges}, "tc")
    # Left-to-right SIP binds only the first argument through the
    # recursion, so answers are reachable-from-a facts filtered... the
    # bridging rule restores only matching tuples is NOT applied here:
    # the adorned program computes tc_bb; we check the query answer
    # itself is derivable.
    assert ("a", "d") in magic


def test_nonlinear_tc_magic():
    edges = [("a", "b"), ("b", "c"), ("c", "d"), ("p", "q")]
    program = parse(
        """
        T1: tc(X, Y) :- edge(X, Y).
        T2: tc(X, Z) :- tc(X, Y), tc(Y, Z).
        Query: tc(X, Y).
        """
    )
    query = bound_query("tc", "a", "Y")
    rewritten = magic_rewrite(program, query)
    magic = run_program(rewritten, {"edge": edges}, "tc")
    assert {t for t in magic if t[0] == "a"} == {
        ("a", "b"), ("a", "c"), ("a", "d")
    }


def test_psn_agrees_with_seminaive_on_magic_program():
    edges = [("a", "b"), ("b", "c"), ("x", "y")]
    program = transitive_closure()
    rewritten = magic_rewrite(program, bound_query("tc", "a", "Y"))
    db1 = Database.for_program(rewritten)
    db1.load_facts("edge", edges)
    db2 = Database.for_program(rewritten)
    db2.load_facts("edge", edges)
    assert (seminaive.evaluate(rewritten, db1).rows("tc")
            == psn.evaluate(rewritten, db2).rows("tc"))


def test_magic_seed_fact_present():
    program = transitive_closure()
    rewritten = magic_rewrite(program, bound_query("tc", "a", "Y"))
    seeds = [f for f in rewritten.facts if f.pred.startswith("magic_")]
    assert len(seeds) == 1
    assert seeds[0].args == (Constant("a"),)

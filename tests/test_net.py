"""Network substrate tests: simulator determinism, FIFO links, message
sizing, traffic accounting."""

import pytest

from repro.errors import NetworkError
from repro.net.link import LinkChannel
from repro.net.message import HEADER_BYTES, Message, NetDelta, single, tuple_size
from repro.net.sim import Simulator
from repro.net.stats import ResultTracker, TrafficStats
from repro.engine.facts import Fact


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.at(2.0, lambda: log.append("b"))
        sim.at(1.0, lambda: log.append("a"))
        sim.at(3.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_ties_break_by_scheduling_order(self):
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: log.append(1))
        sim.at(1.0, lambda: log.append(2))
        sim.run()
        assert log == [1, 2]

    def test_after_relative(self):
        sim = Simulator()
        sim.at(5.0, lambda: None)
        sim.run()
        log = []
        sim.after(1.0, lambda: log.append(sim.now))
        sim.run()
        assert log == [6.0]

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        log = []

        def chain(n):
            log.append(n)
            if n < 3:
                sim.after(1.0, lambda: chain(n + 1))

        sim.at(0.0, lambda: chain(0))
        sim.run()
        assert log == [0, 1, 2, 3]

    def test_run_until(self):
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: log.append(1))
        sim.at(5.0, lambda: log.append(5))
        sim.run(until=2.0)
        assert log == [1]
        assert sim.now == 2.0
        sim.run()
        assert log == [1, 5]

    def test_cancellation(self):
        sim = Simulator()
        log = []
        handle = sim.at(1.0, lambda: log.append("no"))
        handle.cancel()
        sim.run()
        assert log == []

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.at(5.0, lambda: None)
        sim.run()
        with pytest.raises(NetworkError):
            sim.at(1.0, lambda: None)

    def test_post_interleaves_with_handled_events(self):
        """post() events (no cancellation handle) run in time order and
        tie-break by scheduling sequence, exactly like at()/after()."""
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: log.append("at"))
        sim.post(1.0, lambda: log.append("post"))
        sim.post(0.5, lambda: log.append("early"))
        with pytest.raises(NetworkError):
            sim.post(-0.1, lambda: None)
        sim.run()
        assert log == ["early", "at", "post"]
        assert sim.events_processed == 3

    def test_run_counts_only_uncancelled_events(self):
        sim = Simulator()
        handle = sim.at(1.0, lambda: None)
        handle.cancel()
        sim.at(2.0, lambda: None)
        sim.run()
        assert sim.events_processed == 1

    def test_run_until_advances_now_when_heap_drains_early(self):
        """Regression: ``run(until=T)`` used to leave ``now`` at the
        last event time when the heap drained before ``T``, so later
        ``after()`` calls and soft-state expiry sweeps computed against
        a stale clock."""
        sim = Simulator()
        sim.at(1.0, lambda: None)
        sim.run(until=5.0)
        assert sim.now == 5.0
        log = []
        sim.after(1.0, lambda: log.append(sim.now))
        sim.run()
        assert log == [6.0]

    def test_run_until_advances_now_on_empty_heap(self):
        sim = Simulator()
        assert sim.run(until=3.0) == 3.0
        assert sim.now == 3.0
        # An observation horizon never moves the clock backwards.
        assert sim.run(until=1.0) == 3.0

    def test_run_until_never_rewinds_with_pending_events(self):
        sim = Simulator()
        sim.at(5.0, lambda: None)
        assert sim.run(until=3.0) == 3.0
        # A smaller horizon with events still pending must not rewind.
        assert sim.run(until=1.0) == 3.0
        assert sim.now == 3.0

    def test_livelock_guard_does_not_count_the_fatal_event(self):
        """Regression: the guard counted the fatal event into
        ``events_processed`` (and dropped it from the heap) before
        raising."""
        sim = Simulator()

        def requeue():
            sim.post(0.1, requeue)

        sim.post(0.0, requeue)
        with pytest.raises(NetworkError, match="exceeded 5 events"):
            sim.run(max_events=5)
        assert sim.events_processed == 5
        assert sim.pending == 1  # the fatal event went back on the heap

    def test_step_honors_the_run_budget(self):
        """Mixed step()/run() use cannot overshoot the cap: once run()
        installed a budget, step() raises the same livelock error."""
        sim = Simulator()

        def requeue():
            sim.post(0.1, requeue)

        sim.post(0.0, requeue)
        with pytest.raises(NetworkError):
            sim.run(max_events=3)
        with pytest.raises(NetworkError, match="exceeded 3 events"):
            sim.step()
        assert sim.events_processed == 3
        # A fresh run() call grants a fresh budget and proceeds.
        with pytest.raises(NetworkError):
            sim.run(max_events=2)
        assert sim.events_processed == 5


class TestMessageSizes:
    def test_header_and_fields(self):
        message = single("a", "b", "path", ("a", "b", 5), 1)
        assert message.size > HEADER_BYTES
        assert message.size == HEADER_BYTES + message.deltas[0].payload_size()

    def test_longer_paths_cost_more(self):
        short = tuple_size("path", ("a", "b", ("a", "b"), 2))
        long = tuple_size("path", ("a", "b", ("a", "x", "y", "b"), 4))
        assert long > short

    def test_shared_bytes_reduce_total(self):
        deltas = tuple(
            NetDelta("path_" + s, ("a", "b", ("a", "b"), c), 1)
            for s, c in (("lat", 3), ("rel", 7), ("rnd", 11))
        )
        merged = Message("a", "b", deltas, shared_bytes=30)
        unmerged = Message("a", "b", deltas)
        assert merged.size < unmerged.size


class TestLinkChannel:
    def make(self, latency=0.01, bandwidth=1e6):
        return LinkChannel("a", "b", latency=latency, bandwidth_bps=bandwidth)

    def test_fifo_even_with_different_sizes(self):
        """A small message sent after a large one must not overtake it
        (store-and-forward queueing, Section 4.2's FIFO requirement)."""
        sim = Simulator()
        channel = self.make(latency=0.05, bandwidth=8_000)  # 1 kB/s
        arrivals = []
        big = Message("a", "b", tuple(
            NetDelta("p", ("x" * 200,), 1) for _ in range(5)
        ))
        small = single("a", "b", "p", (1,), 1)
        channel.transmit(sim, big, lambda m: arrivals.append("big"))
        channel.transmit(sim, small, lambda m: arrivals.append("small"))
        sim.run()
        assert arrivals == ["big", "small"]

    def test_transmission_plus_latency(self):
        sim = Simulator()
        channel = self.make(latency=0.5, bandwidth=1e6)
        message = single("a", "b", "p", (1,), 1)
        arrival = channel.transmit(sim, message, lambda m: None)
        expected = message.size * 8 / 1e6 + 0.5
        assert abs(arrival - expected) < 1e-12

    def test_directions_have_independent_queues(self):
        sim = Simulator()
        channel = self.make(latency=0.01, bandwidth=8_000)
        arrivals = []
        m1 = single("a", "b", "p", ("x" * 500,), 1)
        m2 = single("b", "a", "p", (1,), 1)
        channel.transmit(sim, m1, lambda m: arrivals.append("ab"))
        channel.transmit(sim, m2, lambda m: arrivals.append("ba"))
        sim.run()
        assert arrivals == ["ba", "ab"]  # reverse direction not queued

    def test_wrong_endpoints_rejected(self):
        sim = Simulator()
        channel = self.make()
        with pytest.raises(NetworkError):
            channel.transmit(sim, single("a", "z", "p", (1,), 1), lambda m: None)

    def test_loss(self):
        import random

        sim = Simulator()
        channel = self.make()
        channel.loss_rate = 1.0
        delivered = []
        channel.transmit(sim, single("a", "b", "p", (1,), 1),
                         lambda m: delivered.append(m),
                         rng=random.Random(1))
        sim.run()
        assert delivered == []

    def test_loss_applies_without_an_rng(self):
        """Regression: ``loss_rate`` used to be silently disabled when
        no rng was passed; the channel now falls back to its own seeded
        rng, so a lossy channel is deterministic rather than lossless."""
        sim = Simulator()
        channel = self.make()
        channel.loss_rate = 1.0
        delivered = []
        channel.transmit(sim, single("a", "b", "p", (1,), 1),
                         lambda m: delivered.append(m))
        sim.run()
        assert delivered == []

    def test_default_loss_rng_is_deterministic_per_channel(self):
        outcomes = []
        for _round in range(2):
            sim = Simulator()
            channel = LinkChannel("a", "b", latency=0.0, loss_rate=0.5)
            got = []
            for i in range(30):
                channel.transmit(
                    sim, single("a", "b", "p", (i,), 1),
                    lambda m: got.append(m.deltas[0].args[0]),
                )
            sim.run()
            outcomes.append(tuple(got))
        assert outcomes[0] == outcomes[1]
        assert 0 < len(outcomes[0]) < 30  # loss genuinely applied


class TestTrafficStats:
    def test_totals(self):
        stats = TrafficStats()
        stats.record(0.1, "a", 100)
        stats.record(0.2, "b", 300)
        assert stats.total_bytes() == 400
        assert stats.bytes_by_node() == {"a": 100, "b": 300}

    def test_series_binning(self):
        stats = TrafficStats()
        stats.record(0.1, "a", 1000)
        stats.record(0.3, "a", 2000)
        series = stats.per_node_kbps_series(node_count=2, bin_seconds=0.25)
        assert len(series) == 2
        # First bin: 1000 bytes / 0.25s / 2 nodes / 1e3 = 2 kBps.
        assert series[0] == (0.25, 2.0)
        assert series[1] == (0.5, 4.0)

    def test_bytes_between(self):
        stats = TrafficStats()
        stats.record(1.0, "a", 10)
        stats.record(2.0, "a", 20)
        stats.record(3.0, "a", 40)
        assert stats.bytes_between(1.5, 2.5) == 20


class TestResultTracker:
    def test_completion_and_cdf(self):
        tracker = ResultTracker(watch_pred="sp")
        tracker.on_commit(1.0, Fact("sp", ("a", "b", 5)), 1)
        tracker.on_commit(2.0, Fact("sp", ("a", "c", 9)), 1)
        # Replacement: the old value's retraction then the better value.
        tracker.on_commit(3.0, Fact("sp", ("a", "b", 5)), -1)
        tracker.on_commit(3.0, Fact("sp", ("a", "b", 2)), 1)
        assert tracker.convergence_time() == 3.0
        assert tracker.completion_times() == [2.0, 3.0]
        curve = tracker.results_over_time(points=3)
        assert curve[0][1] == 0.0
        assert curve[-1][1] == 1.0

    def test_ignores_other_preds(self):
        tracker = ResultTracker(watch_pred="sp")
        tracker.on_commit(1.0, Fact("path", ("a",)), 1)
        assert tracker.completion_times() == []
